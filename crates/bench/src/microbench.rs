//! A tiny self-contained benchmark harness.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the `benches/` targets cannot use criterion. This module
//! provides the small subset we need: warmup, automatic iteration-count
//! calibration, median-of-samples timing, and machine-readable output.
//!
//! Every [`Runner`] prints one `ns/iter` line per benchmark to stdout and, on
//! [`Runner::finish`], writes `results/bench_<name>.json` (honoring
//! `VENICE_RESULTS_DIR`) so successive runs leave a comparable perf
//! trajectory on disk.

use std::path::Path;
use std::time::{Duration, Instant};

/// One measured benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Collects measurements for one bench target and writes them out as JSON.
pub struct Runner {
    target: String,
    measurements: Vec<Measurement>,
    /// Target wall-clock budget for one sample.
    sample_budget: Duration,
    /// Timed samples per benchmark (the median is reported).
    samples: usize,
}

impl Runner {
    /// Creates a runner for the bench target `target` (used in the output
    /// file name `bench_<target>.json`).
    pub fn new(target: &str) -> Self {
        Runner {
            target: target.to_string(),
            measurements: Vec::new(),
            sample_budget: Duration::from_millis(50),
            samples: 7,
        }
    }

    /// Overrides the per-sample time budget (larger = steadier numbers).
    pub fn sample_budget(mut self, budget: Duration) -> Self {
        self.sample_budget = budget;
        self
    }

    /// Times `f`, printing a `ns/iter` line and recording the measurement.
    ///
    /// Calibration: `f` is run repeatedly, doubling the iteration count until
    /// one batch exceeds ~1/5 of the sample budget; that count is then used
    /// for `self.samples` timed samples and the median is reported.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        // Warmup + calibration.
        let mut iters: u64 = 1;
        let calib_floor = self.sample_budget / 5;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= calib_floor || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the budget once we have a usable estimate.
            iters = if elapsed.is_zero() {
                iters * 2
            } else {
                let scale = self.sample_budget.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.5, 16.0)) as u64
            }
            .max(iters + 1);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!(
            "bench {:<44} {:>14.1} ns/iter  ({} iters x {} samples)",
            format!("{}::{}", self.target, name),
            median,
            iters,
            self.samples
        );
        self.measurements.push(Measurement {
            name: name.to_string(),
            ns_per_iter: median,
            iters_per_sample: iters,
            samples: self.samples,
        });
    }

    /// The ns/iter of the most recent [`Runner::bench`] call, if any —
    /// for benches that post-process their own timings (e.g. into
    /// events/sec) on top of the recorded trajectory.
    pub fn last_ns_per_iter(&self) -> Option<f64> {
        self.measurements.last().map(|m| m.ns_per_iter)
    }

    /// Writes `results/bench_<target>.json` and returns the measurements.
    ///
    /// JSON is emitted by hand (no serde in this workspace); the schema is
    /// `[{"name": ..., "ns_per_iter": ..., "iters": ..., "samples": ...}]`.
    pub fn finish(self) -> Vec<Measurement> {
        let dir = crate::results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return self.measurements;
        }
        let path = dir.join(format!("bench_{}.json", self.target));
        let mut json = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}, \"samples\": {}}}{}\n",
                m.name.replace('"', "'"),
                m.ns_per_iter,
                m.iters_per_sample,
                m.samples,
                if i + 1 == self.measurements.len() { "" } else { "," }
            ));
        }
        json.push_str("]\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("bench results -> {}", path.display());
        }
        self.measurements
    }
}

/// Extracts the float right after every `"key": ` occurrence in one of the
/// workspace's hand-rolled JSON documents, in document order (enough for
/// the perf-baseline files' fixed schemas).
pub fn json_f64_fields(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse() {
            out.push(v);
        }
    }
    out
}

/// Extracts the string value of every `"key": "..."` occurrence, in
/// document order.
pub fn json_str_fields(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\": \"");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        if let Some(end) = rest.find('"') {
            out.push(rest[..end].to_string());
        }
    }
    out
}

/// The perf-smoke gate shared by the ratio benches (`dispatch_scan`,
/// `scout_walk`): compares each measured `(scenario name, speedup)` ratio
/// against the matching `"name"`/`"speedup"` pair in the checked-in
/// baseline file and **exits the process with status 1** when any scenario
/// fell below `floor_fraction` of its baseline ratio. Speedups are
/// wall-clock ratios on the same machine and binary, so the gate is robust
/// to absolute machine speed. A missing baseline skips the gate (first run
/// on a fresh machine); `VENICE_PERF_WARN_ONLY=1` downgrades failures to
/// warnings on noisy runners.
pub fn enforce_speedup_baseline(
    bench: &str,
    baseline_path: &Path,
    speedups: &[(String, f64)],
    floor_fraction: f64,
) {
    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        println!(
            "no baseline at {}; skipping regression gate",
            baseline_path.display()
        );
        return;
    };
    let names = json_str_fields(&baseline, "name");
    let base_speedups = json_f64_fields(&baseline, "speedup");
    let warn_only = std::env::var("VENICE_PERF_WARN_ONLY").is_ok();
    let mut regressed = false;
    for (name, base) in names.iter().zip(&base_speedups) {
        let Some((_, now)) = speedups.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let floor = base * floor_fraction;
        if *now < floor {
            regressed = true;
            eprintln!(
                "PERF REGRESSION {name}: speedup {now:.2}x < {floor:.2}x \
                 (baseline {base:.2}x - {:.0}%)",
                (1.0 - floor_fraction) * 100.0
            );
        } else {
            println!("perf-smoke {name}: {now:.2}x vs baseline {base:.2}x ok");
        }
    }
    if regressed {
        if warn_only {
            eprintln!("VENICE_PERF_WARN_ONLY set: reporting only");
        } else {
            eprintln!(
                "{bench} perf-smoke failed (set VENICE_PERF_WARN_ONLY=1 on noisy runners)"
            );
            std::process::exit(1);
        }
    }
}
