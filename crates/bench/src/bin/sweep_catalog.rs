//! Design-space sweep CLI: expand a named grid, run it on the shared
//! worker pool, print a per-point table, and write a reproducible artifact
//! under `results/sweep_<grid>/`.
//!
//! ```sh
//! cargo run --release -p venice-bench --bin sweep_catalog -- --grid mini
//! cargo run --release -p venice-bench --bin sweep_catalog -- --grid shapes --requests 1000
//! cargo run --release -p venice-bench --bin sweep_catalog -- --list
//! ```
//!
//! Grids: `mini` (3 workloads × Baseline/Venice smoke test, 200 requests
//! unless overridden), `table2` (the whole catalog × all six systems),
//! `mixes` (Table 3), `shapes` (4×16 / 8×8 / 16×4 reshapes plus the 16×16 /
//! 32×32 big meshes), `nand` (z-nand vs tlc-3d timing axis), `qd`
//! (queue-depth axis), `design` (shape × timing × queue-depth cross on a
//! workload subset), `policy` (dispatch-policy ablation on the congested
//! bursty workload plus two catalog entries), `bigmesh` (8×8 / 16×16 /
//! 32×32 meshes × retry-all/auto policies on congestion-heavy traffic —
//! the incremental ready-set dispatcher is what makes these cheap enough
//! to sweep), `scoutcache` (the scout fast-fail cache ablation: cache-off
//! vs cache-on Venice on congested 16×16/32×32 meshes; diff the two
//! halves with the `sweep_diff` bin), `faults` (the degraded-mode
//! ablation: every fault plan × the five real fabrics on congestion-heavy
//! traffic; also distills `results/fault_ablation.json` comparing Venice
//! against the bus fabrics under a single link failure), `tenants` (the
//! multi-tenant QoS ablation: the victim-solo / noisy-neighbor scenario
//! pair × every tenant-set preset × the bus fabrics and Venice; also
//! distills `results/tenant_isolation.json` comparing each fabric's
//! victim-tenant p99 degradation under the aggressor burst), `resilience`
//! (the host-resilience ablation: congestion-heavy traffic × fault-free,
//! permanent-link, and fault-storm plans × every resilience preset ×
//! single vs deadline-split tenant sets × the five real fabrics; also
//! distills `results/resilience_ablation.json` comparing Venice against
//! the bus fabrics' goodput under the link fault with the full resilience
//! layer armed), `rebuild` (the RAIN redundancy ablation: congestion-heavy
//! traffic × the permanent chip-death plan × no-redundancy vs die-level
//! parity × the five real fabrics; also distills
//! `results/rebuild_ablation.json` comparing data loss, degraded-read
//! service, and rebuild MTTR across fabrics).
//!
//! Sweeps are *resumable*: when `results/sweep_<grid>/` already holds a
//! manifest with this grid's exact grid hash, points whose record file
//! exists are reused instead of re-simulated; `--fresh` forces a full
//! re-run.
//!
//! Flags: `--grid <name>`, `--requests <n>` (default: `VENICE_REQUESTS`,
//! except `mini`/`policy`/`bigmesh`/`scoutcache` which have their own
//! defaults), `--par <n>` (dedicated pool size; default: the shared pool),
//! `--systems a,b,c` (override the fabric axis by label, e.g.
//! `Baseline,Venice`), `--scout-cache <off|on|checked>` (override the
//! scout fast-fail-cache axis), `--fresh`, `--list`.

use venice_bench::report_resumed;
use venice_bench::sweep::{ResumedSweep, SweepGrid, WorkerPool};
use venice_interconnect::FabricKind;
use venice_nand::NandTiming;
use venice_ssd::report::{json_f64, json_str};
use venice_ssd::{
    all_systems, DispatchPolicyKind, FaultPlan, RedundancyKind, ResiliencePolicy, ScoutCacheKind,
    SsdConfig, TenantSet,
};
use venice_workloads::WorkloadAxis;

/// The read-intensity-diverse workload subset used by the multi-axis grids
/// (running the full catalog across a cross of axes would be hours, not a
/// smoke-able sweep).
const SUBSET: [&str; 5] = ["hm_0", "proj_3", "src1_0", "YCSB_B", "ssd-10"];

fn subset_axes() -> Vec<WorkloadAxis> {
    SUBSET
        .iter()
        .map(|n| WorkloadAxis::catalog(n).expect("subset workload in catalog"))
        .collect()
}

/// Builds a named grid; `None` for an unknown name. `requests` of `None`
/// means "the grid's own default".
fn named_grid(name: &str, requests: Option<usize>) -> Option<SweepGrid> {
    let grid = match name {
        "mini" => SweepGrid::new("mini")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .workload(WorkloadAxis::catalog("proj_3").expect("catalog"))
            .workload(WorkloadAxis::catalog("YCSB_B").expect("catalog"))
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(requests.unwrap_or(200)),
        "table2" => SweepGrid::new("table2")
            .workloads(WorkloadAxis::table2())
            .fabrics(&all_systems()),
        "mixes" => SweepGrid::new("mixes")
            .workloads(WorkloadAxis::table3())
            .fabrics(&all_systems()),
        "shapes" => SweepGrid::new("shapes")
            .workloads(subset_axes())
            .shapes(&[(4, 16), (8, 8), (16, 4), (16, 16), (32, 32)])
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::NoSsd,
                FabricKind::Venice,
                FabricKind::Ideal,
            ]),
        "nand" => SweepGrid::new("nand")
            .workloads(subset_axes())
            .timings(&[NandTiming::z_nand(), NandTiming::tlc_3d()])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal]),
        "qd" => SweepGrid::new("qd")
            .workloads(subset_axes())
            .queue_depths(&[2, 8, 32])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice]),
        "design" => SweepGrid::new("design")
            .workloads(subset_axes())
            .shapes(&[(4, 16), (8, 8), (16, 4)])
            .timings(&[NandTiming::z_nand(), NandTiming::tlc_3d()])
            .queue_depths(&[4, 16])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice]),
        "policy" => SweepGrid::new("policy")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .workload(WorkloadAxis::catalog("YCSB_B").expect("catalog"))
            .policies(&DispatchPolicyKind::ALL)
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(requests.unwrap_or(800)),
        "bigmesh" => SweepGrid::new("bigmesh")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .shapes(&[(8, 8), (16, 16), (32, 32)])
            .policies(&[DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto])
            .fabrics(&[FabricKind::Baseline, FabricKind::NoSsd, FabricKind::Venice])
            .requests(requests.unwrap_or(400)),
        "faults" => SweepGrid::new("faults")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .fault_plans(&FaultPlan::ALL)
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::Pssd,
                FabricKind::PnSsd,
                FabricKind::NoSsd,
                FabricKind::Venice,
            ])
            .requests(requests.unwrap_or(400)),
        "tenants" => SweepGrid::new("tenants")
            .workload(WorkloadAxis::victim_solo())
            .workload(WorkloadAxis::noisy_neighbor())
            .workload(WorkloadAxis::noisy_neighbor_trio())
            .queue_depths(&[32])
            .tenant_sets(&TenantSet::presets())
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::Pssd,
                FabricKind::PnSsd,
                FabricKind::Venice,
            ])
            .requests(requests.unwrap_or(600)),
        "resilience" => SweepGrid::new("resilience")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .fault_plans(&[FaultPlan::None, FaultPlan::Link, FaultPlan::Storm])
            .tenant_sets(&[TenantSet::single(), TenantSet::deadline_split()])
            .resilience_policies(&ResiliencePolicy::ALL)
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::Pssd,
                FabricKind::PnSsd,
                FabricKind::NoSsd,
                FabricKind::Venice,
            ])
            .requests(requests.unwrap_or(800)),
        "rebuild" => SweepGrid::new("rebuild")
            .workload(WorkloadAxis::congested())
            .fault_plans(&[FaultPlan::Chip, FaultPlan::ChipAndLink])
            .resilience_policies(&[ResiliencePolicy::DeadlineRetry])
            .redundancy_kinds(&RedundancyKind::ALL)
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::Pssd,
                FabricKind::PnSsd,
                FabricKind::NoSsd,
                FabricKind::Venice,
            ])
            .requests(requests.unwrap_or(800)),
        "scoutcache" => SweepGrid::new("scoutcache")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .shapes(&[(16, 16), (32, 32)])
            .policies(&[DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto])
            .scout_caches(&[ScoutCacheKind::Off, ScoutCacheKind::On])
            .fabrics(&[FabricKind::Venice])
            .requests(requests.unwrap_or(400)),
        _ => return None,
    };
    let grid = grid.config(SsdConfig::performance_optimized());
    let own_default = matches!(
        name,
        "mini" | "policy" | "bigmesh" | "scoutcache" | "faults" | "tenants" | "resilience"
            | "rebuild"
    );
    Some(match requests {
        Some(r) if !own_default => grid.requests(r),
        _ => grid,
    })
}

const GRID_NAMES: [&str; 14] = [
    "mini", "table2", "mixes", "shapes", "nand", "qd", "design", "policy", "bigmesh",
    "scoutcache", "faults", "tenants", "resilience", "rebuild",
];

/// Extracts the raw numeric token after the first `"key": ` occurrence.
fn json_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Distills the `faults` grid into `results/fault_ablation.json`: one
/// entry per point plus per-(plan × fabric) mean availability, with a
/// headline comparing Venice against the bus fabrics under the single-link
/// plan (the bus loses a whole row to one dead link; the mesh reroutes).
/// Per-(fault plan, fabric) availability accumulator cell.
type AvailabilityCell<'a> = ((&'a str, &'a str), (f64, u32));

fn write_fault_ablation(outcome: &ResumedSweep, path: &std::path::Path) {
    let mut point_lines = Vec::new();
    // (plan label, fabric label) -> (availability sum, points)
    let mut agg: Vec<AvailabilityCell> = Vec::new();
    for (p, json) in outcome.points().iter().zip(outcome.point_jsons()) {
        let avail = json_num(json, "availability").unwrap_or(0.0);
        let failed = json_num(json, "failed_requests").unwrap_or(0.0) as u64;
        let completed = json_num(json, "completed_requests").unwrap_or(0.0) as u64;
        point_lines.push(format!(
            "    {{\"label\": {}, \"workload\": {}, \"fabric\": {}, \
             \"fault_plan\": {}, \"completed_requests\": {completed}, \
             \"failed_requests\": {failed}, \"availability\": {}}}",
            json_str(&p.label),
            json_str(&p.workload),
            json_str(p.fabric.label()),
            json_str(p.fault_plan.label()),
            json_f64(avail),
        ));
        let key = (p.fault_plan.label(), p.fabric.label());
        match agg.iter_mut().find(|(k, _)| *k == key) {
            Some((_, (sum, n))) => {
                *sum += avail;
                *n += 1;
            }
            None => agg.push((key, (avail, 1))),
        }
    }
    let mean = |plan: &str, fabric: &str| {
        agg.iter()
            .find(|((pl, fb), _)| *pl == plan && *fb == fabric)
            .map(|(_, (sum, n))| sum / f64::from(*n))
    };
    let agg_lines: Vec<String> = agg
        .iter()
        .map(|((plan, fabric), (sum, n))| {
            format!(
                "    {{\"fault_plan\": {}, \"fabric\": {}, \"mean_availability\": {}}}",
                json_str(plan),
                json_str(fabric),
                json_f64(sum / f64::from(*n)),
            )
        })
        .collect();
    // Two-tier headline. A single dead link strands a whole row on the
    // row-bus designs (Baseline, pSSD) while the mesh reroutes; pnSSD's
    // row+column redundancy genuinely survives one bus outage, so the
    // all-bus comparison uses the crossing row+column pair (`link-cross`),
    // where only the mesh fabrics still have path diversity left.
    let venice_link = mean("link", "Venice").unwrap_or(0.0);
    let best_row_bus = ["Baseline", "pSSD"]
        .iter()
        .filter_map(|b| mean("link", b))
        .fold(0.0f64, f64::max);
    let venice_cross = mean("link-cross", "Venice").unwrap_or(0.0);
    let best_bus_cross = ["Baseline", "pSSD", "pnSSD"]
        .iter()
        .filter_map(|b| mean("link-cross", b))
        .fold(0.0f64, f64::max);
    let sustains = venice_link > best_row_bus && venice_cross > best_bus_cross;
    let doc = format!(
        "{{\n  \"name\": \"fault_ablation\",\n  \"grid\": \"faults\",\n  \
         \"headline\": {{\"venice_sustains_higher\": {sustains}, \
         \"single_link\": {{\"fault_plan\": \"link\", \"venice_availability\": {}, \
         \"best_row_bus_availability\": {}}}, \
         \"crossing_links\": {{\"fault_plan\": \"link-cross\", \"venice_availability\": {}, \
         \"best_bus_availability\": {}}}}},\n  \
         \"availability_by_plan\": [\n{}\n  ],\n  \"points\": [\n{}\n  ]\n}}\n",
        json_f64(venice_link),
        json_f64(best_row_bus),
        json_f64(venice_cross),
        json_f64(best_bus_cross),
        agg_lines.join(",\n"),
        point_lines.join(",\n"),
    );
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("[venice-bench] fault ablation: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Extracts a numeric field from one tenant's entry of the point JSON's
/// `"tenants"` array: scoped to start at `"name": "<tenant>"`, so the
/// first `key` occurrence after it is that tenant's (the global latency
/// section precedes the array and is skipped by the scoping).
fn tenant_num(json: &str, tenant: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{tenant}\""))?;
    json_num(&json[at..], key)
}

/// Distills the `tenants` grid into `results/tenant_isolation.json`.
///
/// For each fabric, the victim tenant's p99 under the aggressor burst
/// (the `noisy-neighbor` workload) is compared against the same stream
/// running alone (`victim-solo` × the `single` tenant set): the ratio is
/// the fabric's *victim degradation*. The headline
/// `venice_protects_victim` asserts Venice's degradation under the
/// fair-share tenant set is strictly lower than every bus design's — path
/// diversity, not just queue arbitration, is what isolates the victim.
fn write_tenant_isolation(outcome: &ResumedSweep, path: &std::path::Path) {
    let mut point_lines = Vec::new();
    // (workload, tenant set, fabric) -> victim p99 ns
    let mut victim_p99: Vec<((&str, &str, &str), f64)> = Vec::new();
    for (p, json) in outcome.points().iter().zip(outcome.point_jsons()) {
        // Single-tenant points carry one pooled "all" tenant; the victim
        // stream is tenant "victim" on the multi-tenant sets.
        let victim = tenant_num(json, "victim", "p99_ns")
            .or_else(|| tenant_num(json, "all", "p99_ns"))
            .unwrap_or(0.0);
        let aggressor = tenant_num(json, "aggressor", "p99_ns");
        let fairness = json_num(json, "fairness_index").unwrap_or(1.0);
        point_lines.push(format!(
            "    {{\"label\": {}, \"workload\": {}, \"tenants\": {}, \
             \"fabric\": {}, \"victim_p99_ns\": {}, \"aggressor_p99_ns\": {}, \
             \"fairness_index\": {}}}",
            json_str(&p.label),
            json_str(&p.workload),
            json_str(&p.tenants),
            json_str(p.fabric.label()),
            json_f64(victim),
            aggressor.map_or("null".to_string(), |a| json_f64(a).to_string()),
            json_f64(fairness),
        ));
        victim_p99.push(((p.workload.as_str(), p.tenants.as_str(), p.fabric.label()), victim));
    }
    let lookup = |workload: &str, tenants: &str, fabric: &str| {
        victim_p99
            .iter()
            .find(|((w, t, f), _)| *w == workload && *t == tenants && *f == fabric)
            .map(|(_, v)| *v)
            .filter(|v| *v > 0.0)
    };
    // Victim p99 degradation per fabric: shared run over solo run.
    let degradation = |fabric: &str, set: &str| {
        let solo = lookup("victim-solo", "single", fabric)?;
        let shared = lookup("noisy-neighbor", set, fabric)?;
        Some(shared / solo)
    };
    let buses = ["Baseline", "pSSD", "pnSSD"];
    let deg_lines: Vec<String> = ["Baseline", "pSSD", "pnSSD", "Venice"]
        .iter()
        .map(|fabric| {
            format!(
                "    {{\"fabric\": {}, \"pair_fair\": {}, \"victim_boost\": {}}}",
                json_str(fabric),
                json_f64(degradation(fabric, "pair-fair").unwrap_or(0.0)),
                json_f64(degradation(fabric, "victim-boost").unwrap_or(0.0)),
            )
        })
        .collect();
    let venice = degradation("Venice", "pair-fair").unwrap_or(f64::MAX);
    let worst_bus = buses
        .iter()
        .filter_map(|b| degradation(b, "pair-fair"))
        .fold(0.0f64, f64::max);
    let best_bus = buses
        .iter()
        .filter_map(|b| degradation(b, "pair-fair"))
        .fold(f64::MAX, f64::min);
    let protects = venice < best_bus;
    let doc = format!(
        "{{\n  \"name\": \"tenant_isolation\",\n  \"grid\": \"tenants\",\n  \
         \"headline\": {{\"venice_protects_victim\": {protects}, \
         \"venice_victim_p99_degradation\": {}, \
         \"best_bus_victim_p99_degradation\": {}, \
         \"worst_bus_victim_p99_degradation\": {}}},\n  \
         \"victim_p99_degradation_by_fabric\": [\n{}\n  ],\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        json_f64(venice),
        json_f64(best_bus),
        json_f64(worst_bus),
        deg_lines.join(",\n"),
        point_lines.join(",\n"),
    );
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("[venice-bench] tenant isolation: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Extracts a numeric field from the point JSON's top-level
/// `"resilience"` object: scoped to start there, so tenant entries (whose
/// `deadline_misses`/`deadline_met` fields precede it) are skipped.
fn resilience_num(json: &str, key: &str) -> Option<f64> {
    let at = json.find("\"resilience\": {")?;
    json_num(&json[at..], key)
}

/// Per-(fault plan, resilience policy, tenant set, fabric) goodput
/// accumulator cell.
type GoodputCell<'a> = ((&'a str, &'a str, &'a str, &'a str), (f64, u32));

/// Distills the `resilience` grid into `results/resilience_ablation.json`:
/// one entry per point plus per-(plan × policy × fabric) mean goodput
/// (deadline-met completions per second), with a headline comparing
/// Venice against the bus fabrics under the permanent link fault with the
/// full resilience layer armed. Venice keeps more requests inside their
/// deadlines when faults and overload hit together — path diversity turns
/// the host layer's aborts and retries into recovered goodput instead of
/// repeated misses against a dead row.
fn write_resilience_ablation(outcome: &ResumedSweep, path: &std::path::Path) {
    let mut point_lines = Vec::new();
    let mut agg: Vec<GoodputCell> = Vec::new();
    for (p, json) in outcome.points().iter().zip(outcome.point_jsons()) {
        let goodput = resilience_num(json, "goodput").unwrap_or(0.0);
        let met = resilience_num(json, "deadline_met").unwrap_or(0.0) as u64;
        let misses = resilience_num(json, "deadline_misses").unwrap_or(0.0) as u64;
        let retries = resilience_num(json, "host_retries").unwrap_or(0.0) as u64;
        let shed = resilience_num(json, "shed_requests").unwrap_or(0.0) as u64;
        let completed = json_num(json, "completed_requests").unwrap_or(0.0) as u64;
        // On deadline-split points, the per-class miss counts show the
        // latency class absorbing the policy's pressure while the batch
        // class (relaxed deadline) and the unarmed class stay clean.
        let victim_misses = tenant_num(json, "victim", "deadline_misses").unwrap_or(0.0) as u64;
        let batch_misses = tenant_num(json, "batch", "deadline_misses").unwrap_or(0.0) as u64;
        point_lines.push(format!(
            "    {{\"label\": {}, \"workload\": {}, \"fabric\": {}, \
             \"fault_plan\": {}, \"resilience\": {}, \"tenants\": {}, \
             \"completed_requests\": {completed}, \"deadline_met\": {met}, \
             \"deadline_misses\": {misses}, \"latency_class_misses\": {victim_misses}, \
             \"batch_class_misses\": {batch_misses}, \"host_retries\": {retries}, \
             \"shed_requests\": {shed}, \"goodput\": {}}}",
            json_str(&p.label),
            json_str(&p.workload),
            json_str(p.fabric.label()),
            json_str(p.fault_plan.label()),
            json_str(p.resilience.label()),
            json_str(&p.tenants),
            json_f64(goodput),
        ));
        let key = (
            p.fault_plan.label(),
            p.resilience.label(),
            p.tenants.as_str(),
            p.fabric.label(),
        );
        match agg.iter_mut().find(|(k, _)| *k == key) {
            Some((_, (sum, n))) => {
                *sum += goodput;
                *n += 1;
            }
            None => agg.push((key, (goodput, 1))),
        }
    }
    // Headline means are scoped to the single-tenant rows so adding the
    // deadline-split axis can never shift the fabric comparison.
    let mean = |plan: &str, policy: &str, fabric: &str| {
        agg.iter()
            .find(|((pl, po, tn, fb), _)| {
                *pl == plan && *po == policy && *tn == "single" && *fb == fabric
            })
            .map(|(_, (sum, n))| sum / f64::from(*n))
    };
    let agg_lines: Vec<String> = agg
        .iter()
        .map(|((plan, policy, tenants, fabric), (sum, n))| {
            format!(
                "    {{\"fault_plan\": {}, \"resilience\": {}, \"tenants\": {}, \
                 \"fabric\": {}, \"mean_goodput\": {}}}",
                json_str(plan),
                json_str(policy),
                json_str(tenants),
                json_str(fabric),
                json_f64(sum / f64::from(*n)),
            )
        })
        .collect();
    // Headline: the permanent link fault with the whole host layer armed.
    // The bus fabrics lose a whole row to the dead link, so a slice of
    // every tenant's requests burns through its retry budget and goes
    // terminal while the survivors' tails push past the deadline; Venice
    // reroutes around the fault and keeps completions inside their
    // deadlines. (The storm plan's outages are short-lived repairs that
    // every fabric rides out, so it differentiates policies, not fabrics —
    // its cells are in `goodput_by_policy` but not the headline.)
    let venice = mean("link", "full", "Venice").unwrap_or(0.0);
    let best_bus = ["Baseline", "pSSD", "pnSSD"]
        .iter()
        .filter_map(|b| mean("link", "full", b))
        .fold(0.0f64, f64::max);
    let highest = venice > best_bus;
    let doc = format!(
        "{{\n  \"name\": \"resilience_ablation\",\n  \"grid\": \"resilience\",\n  \
         \"headline\": {{\"venice_highest_goodput\": {highest}, \
         \"fault_plan\": \"link\", \"resilience\": \"full\", \
         \"venice_goodput\": {}, \"best_bus_goodput\": {}}},\n  \
         \"goodput_by_policy\": [\n{}\n  ],\n  \"points\": [\n{}\n  ]\n}}\n",
        json_f64(venice),
        json_f64(best_bus),
        agg_lines.join(",\n"),
        point_lines.join(",\n"),
    );
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("[venice-bench] resilience ablation: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Extracts a numeric field from the point JSON's top-level
/// `"redundancy"` object: scoped to start there, so the per-tenant
/// `data_loss` fields (which precede it in the document) are skipped.
fn redundancy_num(json: &str, key: &str) -> Option<f64> {
    let at = json.find("\"redundancy\": {")?;
    json_num(&json[at..], key)
}

/// Simulated nanosecond at which [`FaultPlan::Chip`] kills its die — the
/// MTTR clock's start (`rebuild_done_ns - CHIP_DEATH_NS`).
const CHIP_DEATH_NS: f64 = 20_000.0;

/// One parity cell of the rebuild grid: the numbers the headline booleans
/// compare per `(fault plan, fabric)` coordinate.
struct RebuildCell {
    fault: &'static str,
    redundancy: String,
    fabric: &'static str,
    data_loss: u64,
    goodput: f64,
    mttr_ns: f64,
    rebuilt: u64,
    skipped: u64,
}

impl RebuildCell {
    /// A recovery is complete only when every dead-chip page was actually
    /// reconstructed: the engine drained (`mttr_ns > 0`), rebuilt
    /// something, and skipped nothing. A bus fabric whose severed row
    /// hides the survivors drains *fast* but skips every page — that is a
    /// failed recovery, not a low MTTR.
    fn recovered(&self) -> bool {
        self.mttr_ns > 0.0 && self.rebuilt > 0 && self.skipped == 0
    }
}

/// Distills the `rebuild` grid into `results/rebuild_ablation.json`: one
/// entry per point plus a headline with three claims. (1) Die-level
/// parity turns the permanent chip death from silent data loss into
/// degraded-but-correct service: every parity point on every fabric and
/// fault plan has zero [`venice_ssd::RequestOutcome::DataLoss`] requests.
/// (2, 3) On the `chip-link` plan — the chip death landing on an
/// already-degraded fabric: the severed row link plus the crossing column
/// cut through the east-neighbor survivor — Venice sustains the highest
/// foreground goodput (successful completions only) AND the lowest
/// rebuild MTTR of the bus designs, *completing* the recovery: Baseline
/// and pSSD cannot reach the survivors behind the severed row bus, and
/// even pnSSD's row+column redundancy loses the east-neighbor survivor,
/// so strict parity forces their rebuilds to skip pages (an incomplete
/// recovery never wins the MTTR comparison, however fast it drained).
/// NoSSD, the other mesh, is excluded from the booleans (its points still
/// land in the artifact), mirroring the bus-only precedent of the fault,
/// tenant-isolation, and resilience ablation headlines.
fn write_rebuild_ablation(outcome: &ResumedSweep, path: &std::path::Path) {
    let mut point_lines = Vec::new();
    let mut cells: Vec<RebuildCell> = Vec::new();
    for (p, json) in outcome.points().iter().zip(outcome.point_jsons()) {
        let data_loss = redundancy_num(json, "data_loss_requests").unwrap_or(0.0) as u64;
        let degraded = redundancy_num(json, "degraded_reads").unwrap_or(0.0) as u64;
        let rebuilt = redundancy_num(json, "rebuilt_pages").unwrap_or(0.0) as u64;
        let skipped = redundancy_num(json, "rebuild_skipped_pages").unwrap_or(0.0) as u64;
        let done_ns = redundancy_num(json, "rebuild_done_ns").unwrap_or(0.0);
        let completed = json_num(json, "completed_requests").unwrap_or(0.0);
        let failed = json_num(json, "failed_requests").unwrap_or(0.0);
        let exec_ns = json_num(json, "execution_time_ns").unwrap_or(0.0);
        // Successful completions only: a fabric that fast-fails the
        // severed row's requests must not "win" goodput on error
        // completions it never actually served.
        let goodput = if exec_ns > 0.0 {
            (completed - failed).max(0.0) / (exec_ns / 1e9)
        } else {
            0.0
        };
        let mttr_ns = if done_ns > CHIP_DEATH_NS {
            done_ns - CHIP_DEATH_NS
        } else {
            0.0
        };
        point_lines.push(format!(
            "    {{\"label\": {}, \"workload\": {}, \"fault\": {}, \
             \"fabric\": {}, \
             \"redundancy\": {}, \"completed_requests\": {}, \
             \"data_loss_requests\": {data_loss}, \"degraded_reads\": {degraded}, \
             \"rebuilt_pages\": {rebuilt}, \"rebuild_skipped_pages\": {skipped}, \
             \"rebuild_mttr_ns\": {}, \
             \"foreground_goodput\": {}}}",
            json_str(&p.label),
            json_str(&p.workload),
            json_str(p.fault_plan.label()),
            json_str(p.fabric.label()),
            json_str(&p.redundancy.label()),
            completed as u64,
            json_f64(mttr_ns),
            json_f64(goodput),
        ));
        cells.push(RebuildCell {
            fault: p.fault_plan.label(),
            redundancy: p.redundancy.label(),
            fabric: p.fabric.label(),
            data_loss,
            goodput,
            mttr_ns,
            rebuilt,
            skipped,
        });
    }
    let parity: Vec<&RebuildCell> = cells
        .iter()
        .filter(|c| c.redundancy.starts_with("parity"))
        .collect();
    // Claim 1: parity turns the chip death into zero data-loss requests on
    // every fabric and every plan (the no-redundancy half records the
    // losses for contrast).
    let parity_zero_data_loss = !parity.is_empty() && parity.iter().all(|c| c.data_loss == 0);
    let bare_data_loss: u64 = cells
        .iter()
        .filter(|c| c.redundancy == "none")
        .map(|c| c.data_loss)
        .sum();
    // Claims 2 and 3 read the chip-link parity points: the degraded-fabric
    // head-to-head where the fabric — not the NAND — is the rebuild's
    // bottleneck, bus-scoped per the repo's ablation precedent.
    let bus = |f: &str| matches!(f, "Baseline" | "pSSD" | "pnSSD");
    let head: Vec<&&RebuildCell> = parity.iter().filter(|c| c.fault == "chip-link").collect();
    let venice = head.iter().find(|c| c.fabric == "Venice");
    let venice_highest_goodput = venice.is_some_and(|v| {
        let rivals: Vec<&&&RebuildCell> = head.iter().filter(|c| bus(c.fabric)).collect();
        !rivals.is_empty() && rivals.iter().all(|c| v.goodput > c.goodput)
    });
    let venice_lowest_mttr = venice.is_some_and(|v| {
        let rivals: Vec<&&&RebuildCell> = head.iter().filter(|c| bus(c.fabric)).collect();
        v.recovered()
            && !rivals.is_empty()
            && rivals.iter().all(|c| !c.recovered() || v.mttr_ns < c.mttr_ns)
    });
    let (venice_goodput, venice_mttr) =
        venice.map_or((0.0, 0.0), |v| (v.goodput, v.mttr_ns));
    let doc = format!(
        "{{\n  \"name\": \"rebuild_ablation\",\n  \"grid\": \"rebuild\",\n  \
         \"headline\": {{\"parity_zero_data_loss\": {parity_zero_data_loss}, \
         \"venice_highest_goodput\": {venice_highest_goodput}, \
         \"venice_lowest_mttr\": {venice_lowest_mttr}, \
         \"bare_data_loss_requests\": {bare_data_loss}, \
         \"venice_foreground_goodput\": {}, \"venice_mttr_ns\": {}}},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        json_f64(venice_goodput),
        json_f64(venice_mttr),
        point_lines.join(",\n"),
    );
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("[venice-bench] rebuild ablation: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid_name = "table2".to_string();
    let mut requests: Option<usize> = None;
    let mut par: Option<usize> = None;
    let mut systems: Option<Vec<FabricKind>> = None;
    let mut scout_cache: Option<ScoutCacheKind> = None;
    let mut fresh = false;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value after {}", args[*i - 1]))
                .clone()
        };
        match args[i].as_str() {
            "--list" => {
                println!("available grids:");
                for name in GRID_NAMES {
                    let g = named_grid(name, None).expect("named grid");
                    println!("  {:<8} {} points", name, g.build_points().len());
                }
                return;
            }
            "--grid" => grid_name = flag_value(&mut i),
            "--requests" => {
                requests = Some(flag_value(&mut i).parse().expect("--requests takes a number"))
            }
            "--par" => par = Some(flag_value(&mut i).parse().expect("--par takes a number")),
            "--scout-cache" => {
                let v = flag_value(&mut i);
                scout_cache = Some(ScoutCacheKind::by_label(&v).unwrap_or_else(|| {
                    panic!("unknown scout-cache mode {v:?} (off|on|checked)")
                }));
            }
            "--fresh" => fresh = true,
            "--systems" => {
                systems = Some(
                    flag_value(&mut i)
                        .split(',')
                        .map(|label| {
                            FabricKind::by_label(label.trim())
                                .unwrap_or_else(|| panic!("unknown system {label:?}"))
                        })
                        .collect(),
                )
            }
            other => panic!("unknown flag {other:?} (try --list)"),
        }
        i += 1;
    }
    let mut grid = named_grid(&grid_name, requests).unwrap_or_else(|| {
        panic!("unknown grid {grid_name:?}; available: {}", GRID_NAMES.join(", "))
    });
    if let Some(systems) = systems {
        grid = grid.replace_fabrics(&systems);
    }
    if let Some(cache) = scout_cache {
        grid = grid.replace_scout_caches(&[cache]);
    }
    let results = venice_bench::results_dir();
    let outcome = match par {
        Some(par) => grid.run_resumable(&results, &WorkerPool::new(par), fresh),
        None => grid.run_resumable(&results, WorkerPool::global(), fresh),
    };
    report_resumed(&outcome);
    if grid_name == "faults" {
        write_fault_ablation(&outcome, &results.join("fault_ablation.json"));
    }
    if grid_name == "tenants" {
        write_tenant_isolation(&outcome, &results.join("tenant_isolation.json"));
    }
    if grid_name == "resilience" {
        write_resilience_ablation(&outcome, &results.join("resilience_ablation.json"));
    }
    if grid_name == "rebuild" {
        write_rebuild_ablation(&outcome, &results.join("rebuild_ablation.json"));
    }
}
