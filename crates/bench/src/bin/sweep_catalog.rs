//! Design-space sweep CLI: expand a named grid, run it on the shared
//! worker pool, print a per-point table, and write a reproducible artifact
//! under `results/sweep_<grid>/`.
//!
//! ```sh
//! cargo run --release -p venice-bench --bin sweep_catalog -- --grid mini
//! cargo run --release -p venice-bench --bin sweep_catalog -- --grid shapes --requests 1000
//! cargo run --release -p venice-bench --bin sweep_catalog -- --list
//! ```
//!
//! Grids: `mini` (3 workloads × Baseline/Venice smoke test, 200 requests
//! unless overridden), `table2` (the whole catalog × all six systems),
//! `mixes` (Table 3), `shapes` (4×16 / 8×8 / 16×4 reshapes plus the 16×16 /
//! 32×32 big meshes), `nand` (z-nand vs tlc-3d timing axis), `qd`
//! (queue-depth axis), `design` (shape × timing × queue-depth cross on a
//! workload subset), `policy` (dispatch-policy ablation on the congested
//! bursty workload plus two catalog entries), `bigmesh` (8×8 / 16×16 /
//! 32×32 meshes × retry-all/auto policies on congestion-heavy traffic —
//! the incremental ready-set dispatcher is what makes these cheap enough
//! to sweep), `scoutcache` (the scout fast-fail cache ablation: cache-off
//! vs cache-on Venice on congested 16×16/32×32 meshes; diff the two
//! halves with the `sweep_diff` bin).
//!
//! Sweeps are *resumable*: when `results/sweep_<grid>/` already holds a
//! manifest with this grid's exact grid hash, points whose record file
//! exists are reused instead of re-simulated; `--fresh` forces a full
//! re-run.
//!
//! Flags: `--grid <name>`, `--requests <n>` (default: `VENICE_REQUESTS`,
//! except `mini`/`policy`/`bigmesh`/`scoutcache` which have their own
//! defaults), `--par <n>` (dedicated pool size; default: the shared pool),
//! `--systems a,b,c` (override the fabric axis by label, e.g.
//! `Baseline,Venice`), `--scout-cache <off|on|checked>` (override the
//! scout fast-fail-cache axis), `--fresh`, `--list`.

use venice_bench::report_resumed;
use venice_bench::sweep::{SweepGrid, WorkerPool};
use venice_interconnect::FabricKind;
use venice_nand::NandTiming;
use venice_ssd::{all_systems, DispatchPolicyKind, ScoutCacheKind, SsdConfig};
use venice_workloads::WorkloadAxis;

/// The read-intensity-diverse workload subset used by the multi-axis grids
/// (running the full catalog across a cross of axes would be hours, not a
/// smoke-able sweep).
const SUBSET: [&str; 5] = ["hm_0", "proj_3", "src1_0", "YCSB_B", "ssd-10"];

fn subset_axes() -> Vec<WorkloadAxis> {
    SUBSET
        .iter()
        .map(|n| WorkloadAxis::catalog(n).expect("subset workload in catalog"))
        .collect()
}

/// Builds a named grid; `None` for an unknown name. `requests` of `None`
/// means "the grid's own default".
fn named_grid(name: &str, requests: Option<usize>) -> Option<SweepGrid> {
    let grid = match name {
        "mini" => SweepGrid::new("mini")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .workload(WorkloadAxis::catalog("proj_3").expect("catalog"))
            .workload(WorkloadAxis::catalog("YCSB_B").expect("catalog"))
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(requests.unwrap_or(200)),
        "table2" => SweepGrid::new("table2")
            .workloads(WorkloadAxis::table2())
            .fabrics(&all_systems()),
        "mixes" => SweepGrid::new("mixes")
            .workloads(WorkloadAxis::table3())
            .fabrics(&all_systems()),
        "shapes" => SweepGrid::new("shapes")
            .workloads(subset_axes())
            .shapes(&[(4, 16), (8, 8), (16, 4), (16, 16), (32, 32)])
            .fabrics(&[
                FabricKind::Baseline,
                FabricKind::NoSsd,
                FabricKind::Venice,
                FabricKind::Ideal,
            ]),
        "nand" => SweepGrid::new("nand")
            .workloads(subset_axes())
            .timings(&[NandTiming::z_nand(), NandTiming::tlc_3d()])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal]),
        "qd" => SweepGrid::new("qd")
            .workloads(subset_axes())
            .queue_depths(&[2, 8, 32])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice]),
        "design" => SweepGrid::new("design")
            .workloads(subset_axes())
            .shapes(&[(4, 16), (8, 8), (16, 4)])
            .timings(&[NandTiming::z_nand(), NandTiming::tlc_3d()])
            .queue_depths(&[4, 16])
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice]),
        "policy" => SweepGrid::new("policy")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .workload(WorkloadAxis::catalog("YCSB_B").expect("catalog"))
            .policies(&DispatchPolicyKind::ALL)
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(requests.unwrap_or(800)),
        "bigmesh" => SweepGrid::new("bigmesh")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .shapes(&[(8, 8), (16, 16), (32, 32)])
            .policies(&[DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto])
            .fabrics(&[FabricKind::Baseline, FabricKind::NoSsd, FabricKind::Venice])
            .requests(requests.unwrap_or(400)),
        "scoutcache" => SweepGrid::new("scoutcache")
            .workload(WorkloadAxis::congested())
            .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
            .shapes(&[(16, 16), (32, 32)])
            .policies(&[DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto])
            .scout_caches(&[ScoutCacheKind::Off, ScoutCacheKind::On])
            .fabrics(&[FabricKind::Venice])
            .requests(requests.unwrap_or(400)),
        _ => return None,
    };
    let grid = grid.config(SsdConfig::performance_optimized());
    let own_default = matches!(name, "mini" | "policy" | "bigmesh" | "scoutcache");
    Some(match requests {
        Some(r) if !own_default => grid.requests(r),
        _ => grid,
    })
}

const GRID_NAMES: [&str; 10] = [
    "mini", "table2", "mixes", "shapes", "nand", "qd", "design", "policy", "bigmesh",
    "scoutcache",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid_name = "table2".to_string();
    let mut requests: Option<usize> = None;
    let mut par: Option<usize> = None;
    let mut systems: Option<Vec<FabricKind>> = None;
    let mut scout_cache: Option<ScoutCacheKind> = None;
    let mut fresh = false;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value after {}", args[*i - 1]))
                .clone()
        };
        match args[i].as_str() {
            "--list" => {
                println!("available grids:");
                for name in GRID_NAMES {
                    let g = named_grid(name, None).expect("named grid");
                    println!("  {:<8} {} points", name, g.build_points().len());
                }
                return;
            }
            "--grid" => grid_name = flag_value(&mut i),
            "--requests" => {
                requests = Some(flag_value(&mut i).parse().expect("--requests takes a number"))
            }
            "--par" => par = Some(flag_value(&mut i).parse().expect("--par takes a number")),
            "--scout-cache" => {
                let v = flag_value(&mut i);
                scout_cache = Some(ScoutCacheKind::by_label(&v).unwrap_or_else(|| {
                    panic!("unknown scout-cache mode {v:?} (off|on|checked)")
                }));
            }
            "--fresh" => fresh = true,
            "--systems" => {
                systems = Some(
                    flag_value(&mut i)
                        .split(',')
                        .map(|label| {
                            FabricKind::by_label(label.trim())
                                .unwrap_or_else(|| panic!("unknown system {label:?}"))
                        })
                        .collect(),
                )
            }
            other => panic!("unknown flag {other:?} (try --list)"),
        }
        i += 1;
    }
    let mut grid = named_grid(&grid_name, requests).unwrap_or_else(|| {
        panic!("unknown grid {grid_name:?}; available: {}", GRID_NAMES.join(", "))
    });
    if let Some(systems) = systems {
        grid = grid.replace_fabrics(&systems);
    }
    if let Some(cache) = scout_cache {
        grid = grid.replace_scout_caches(&[cache]);
    }
    let results = venice_bench::results_dir();
    let outcome = match par {
        Some(par) => grid.run_resumable(&results, &WorkerPool::new(par), fresh),
        None => grid.run_resumable(&results, WorkerPool::global(), fresh),
    };
    report_resumed(&outcome);
}
