//! Dispatch-policy ablation: measures the engine-throughput (events/sec)
//! and simulated-performance effect of each [`DispatchPolicyKind`] on the
//! congested bursty workload, the regime where ROADMAP follow-up (a)
//! identified failed scout walks as the dominant cost.
//!
//! ```sh
//! cargo run --release -p venice-bench --bin policy_ablation
//! cargo run --release -p venice-bench --bin policy_ablation -- --requests 6000 --repeat 5
//! ```
//!
//! Each `(policy, fabric)` cell runs the same trace `repeat` times
//! single-threaded and keeps the best wall-clock time (standard microbench
//! practice: the minimum is the least-noisy estimator of the true cost).
//! A markdown table goes to stdout and a JSON record to
//! `results/policy_ablation.json`.

use std::time::Instant;

use venice_interconnect::FabricKind;
use venice_ssd::report::{f2, json_f64, json_str, Table};
use venice_ssd::{run_single, DispatchPolicyKind, RunMetrics, SsdConfig};
use venice_workloads::WorkloadAxis;

/// One measured cell: a policy × fabric pair on the congested workload.
struct Cell {
    policy: DispatchPolicyKind,
    fabric: FabricKind,
    metrics: RunMetrics,
    best_wall_s: f64,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.metrics.events as f64 / self.best_wall_s.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requests = 4000usize;
    let mut repeat = 3usize;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value after {}", args[*i - 1]))
                .clone()
        };
        match args[i].as_str() {
            "--requests" => requests = value(&mut i).parse().expect("--requests takes a number"),
            "--repeat" => repeat = value(&mut i).parse().expect("--repeat takes a number"),
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    let repeat = repeat.max(1);
    let axis = WorkloadAxis::congested();
    let trace = axis.trace(requests);
    let fabrics = [FabricKind::Baseline, FabricKind::Venice];

    let mut cells: Vec<Cell> = Vec::new();
    for fabric in fabrics {
        for policy in DispatchPolicyKind::ALL {
            let cfg = SsdConfig::performance_optimized().with_dispatch_policy(policy);
            let mut best_wall_s = f64::INFINITY;
            let mut metrics = None;
            for _ in 0..repeat {
                let t0 = Instant::now();
                let m = run_single(&cfg, fabric, &trace);
                best_wall_s = best_wall_s.min(t0.elapsed().as_secs_f64());
                metrics = Some(m);
            }
            cells.push(Cell {
                policy,
                fabric,
                metrics: metrics.expect("repeat >= 1"),
                best_wall_s,
            });
        }
    }

    let baseline_eps = |fabric: FabricKind| {
        cells
            .iter()
            .find(|c| c.fabric == fabric && c.policy == DispatchPolicyKind::RetryAll)
            .expect("retry-all cell")
            .events_per_sec()
    };
    let mut t = Table::new(
        [
            "fabric",
            "policy",
            "events/s (M)",
            "vs retry-all",
            "sim exec (ms)",
            "attempts",
            "skipped",
            "conflict %",
        ]
        .map(String::from)
        .to_vec(),
    );
    for c in &cells {
        t.row(vec![
            c.fabric.label().to_string(),
            c.policy.label().to_string(),
            format!("{:.2}", c.events_per_sec() / 1e6),
            format!("{}x", f2(c.events_per_sec() / baseline_eps(c.fabric))),
            format!("{:.3}", c.metrics.execution_time.as_secs_f64() * 1e3),
            c.metrics.dispatch.attempts.to_string(),
            c.metrics.dispatch.skipped_backoff.to_string(),
            f2(c.metrics.conflict_pct()),
        ]);
    }
    println!(
        "# Dispatch-policy ablation: workload `{}`, {} requests, best of {}\n",
        axis.name(),
        requests,
        repeat
    );
    print!("{}", t.to_markdown());

    let mut rows = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"fabric\": {}, \"policy\": {}, \"events\": {}, \
             \"best_wall_s\": {}, \"events_per_sec\": {}, \
             \"speedup_vs_retry_all\": {}, \"execution_time_ns\": {}, \
             \"attempts\": {}, \"skipped_backoff\": {}, \"failed_walks\": {}, \
             \"conflict_pct\": {}}}{}\n",
            json_str(c.fabric.label()),
            json_str(c.policy.label()),
            c.metrics.events,
            json_f64(c.best_wall_s),
            json_f64(c.events_per_sec()),
            json_f64(c.events_per_sec() / baseline_eps(c.fabric)),
            c.metrics.execution_time.as_nanos(),
            c.metrics.dispatch.attempts,
            c.metrics.dispatch.skipped_backoff,
            c.metrics.dispatch.failed_walks,
            json_f64(c.metrics.conflict_pct()),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    rows.push_str("  ]");
    let json = format!(
        "{{\n  \"bench\": \"policy_ablation\",\n  \"workload\": {},\n  \
         \"requests\": {},\n  \"repeat\": {},\n  \"cells\": {}\n}}\n",
        json_str(axis.name()),
        requests,
        repeat,
        rows
    );
    let dir = venice_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("policy_ablation.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[venice-bench] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    let venice_backoff = cells
        .iter()
        .find(|c| {
            c.fabric == FabricKind::Venice && c.policy == DispatchPolicyKind::ConflictBackoff
        })
        .expect("venice backoff cell");
    eprintln!(
        "[venice-bench] congested Venice: conflict-backoff {:.2}x retry-all events/sec",
        venice_backoff.events_per_sec() / baseline_eps(FabricKind::Venice)
    );
}
