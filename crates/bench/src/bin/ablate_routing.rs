//! Ablation: how much of Venice's benefit comes from the *non-minimal*
//! stage of its fully-adaptive routing (§4.3)? Compares full Venice,
//! Venice restricted to minimal paths, and NoSSD's deterministic XY, on a
//! read-intensive subset of workloads.

fn main() {
    venice_bench::figures::ablate_routing();
}
