//! Ablation: how much of Venice's benefit comes from the *non-minimal*
//! stage of its fully-adaptive routing (§4.3)? Compares full Venice,
//! Venice restricted to minimal paths, and NoSSD's deterministic XY, on a
//! read-intensive subset of workloads.

use venice_bench::{requests, results_dir, run_trace, speedup};
use venice_interconnect::FabricKind;
use venice_ssd::report::{f2, Table};
use venice_ssd::SsdConfig;
use venice_workloads::catalog;

fn main() {
    let names = ["proj_3", "src2_1", "YCSB_B", "ssd-10", "hm_0"];
    let mut t = Table::new(
        ["workload", "NoSSD (XY)", "Venice minimal-only", "Venice (full)"]
            .map(String::from)
            .to_vec(),
    );
    for name in names {
        let trace = catalog::by_name(name).expect("catalog").generate(requests());
        let cfg = SsdConfig::performance_optimized();
        let systems = [FabricKind::Baseline, FabricKind::NoSsd, FabricKind::Venice];
        let full = run_trace(&cfg, &systems, &trace);
        let mut min_cfg = SsdConfig::performance_optimized();
        min_cfg.fabric.venice_minimal_only = true;
        let minimal = run_trace(&min_cfg, &systems, &trace);
        t.row(vec![
            name.into(),
            f2(speedup(&full, FabricKind::NoSsd)),
            f2(speedup(&minimal, FabricKind::Venice)),
            f2(speedup(&full, FabricKind::Venice)),
        ]);
    }
    println!("# Ablation: routing adaptivity (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("ablate_routing.csv"))
        .expect("write csv");
}
