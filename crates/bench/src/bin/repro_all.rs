//! Reproduces every table and figure in one process, entirely through the
//! shared-pool sweep engine, and leaves all CSVs under `results/` plus a
//! reproducible sweep artifact at `results/sweep_repro_all/manifest.json`.
//! This is the command behind EXPERIMENTS.md.

fn main() {
    venice_bench::figures::repro_all();
}
