//! Runs every table/figure harness in sequence (same binaries, one process)
//! and leaves all CSVs under `results/`. This is the command behind
//! EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "table3", "table4", "fig04", "fig09", "fig10", "fig11", "fig12",
        "fig13", "fig14", "fig15", "ablate_routing",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    for bin in bins {
        eprintln!("==> {bin}");
        // Prefer a prebuilt sibling binary; fall back to `cargo run` so
        // `cargo run --bin repro_all` works from a cold target directory.
        let sibling = dir.join(bin);
        let status = if sibling.exists() {
            Command::new(&sibling).status()
        } else {
            Command::new("cargo")
                .args(["run", "--quiet", "--release", "-p", "venice-bench", "--bin", bin])
                .status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
