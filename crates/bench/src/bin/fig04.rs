//! Figure 4: performance of pSSD, pnSSD, NoSSD and the ideal
//! path-conflict-free SSD over the Baseline SSD (performance-optimized
//! configuration) — the motivation study of §3.3.

use venice_bench::{requests, results_dir, run_catalog, speedup};
use venice_interconnect::FabricKind;
use venice_sim::stats::geometric_mean;
use venice_ssd::report::{f2, Table};
use venice_ssd::SsdConfig;

fn main() {
    let systems = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Ideal,
    ];
    let cfg = SsdConfig::performance_optimized();
    let rows = run_catalog(&cfg, &systems, requests());
    let mut t = Table::new(
        ["workload", "pSSD", "pnSSD", "NoSSD", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (name, results) in &rows {
        let s: Vec<f64> = [
            FabricKind::Pssd,
            FabricKind::PnSsd,
            FabricKind::NoSsd,
            FabricKind::Ideal,
        ]
        .iter()
        .map(|&k| speedup(results, k))
        .collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(vec![name.clone(), f2(s[0]), f2(s[1]), f2(s[2]), f2(s[3])]);
    }
    t.row(
        std::iter::once("GMEAN".to_string())
            .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 4: prior approaches vs the ideal SSD (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig04.csv")).expect("write csv");
}
