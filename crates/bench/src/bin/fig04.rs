//! Figure 4: performance of pSSD, pnSSD, NoSSD and the ideal
//! path-conflict-free SSD over the Baseline SSD (performance-optimized
//! configuration) — the motivation study of §3.3.

fn main() {
    venice_bench::figures::fig04();
}
