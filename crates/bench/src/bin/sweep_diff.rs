//! Cross-sweep diff tool (the ROADMAP follow-up): compare two
//! `results/sweep_<name>/` artifacts point-by-point.
//!
//! ```sh
//! cargo run --release -p venice-bench --bin sweep_diff -- \
//!     results/sweep_scoutcache results/sweep_scoutcache_before
//! cargo run --release -p venice-bench --bin sweep_diff -- --strict a b
//! ```
//!
//! Each argument is a sweep directory (containing `manifest.json`) or a
//! manifest path. Points are matched **by label**; for every pair the tool
//! reports deltas in the headline metrics (execution time, events, and —
//! when the per-point records are readable — conflicted requests and
//! energy), plus the manifests' grid/metrics fingerprints. Use it to diff
//! the same grid before and after an engine change, or — with
//! `--ignore-scout-cache`, which folds the label's scout-cache segment so
//! a `--scout-cache on` run lines up with a `--scout-cache off` run — a
//! cache-on vs cache-off big-mesh sweep, where every simulated-behavior
//! metric must come out identical.
//!
//! Exit status: 0 when every matched point's compared metrics are equal
//! and the point sets match, 1 otherwise *only* under `--strict` (without
//! it the tool is purely informational and always exits 0).

use std::path::{Path, PathBuf};

/// One point as indexed by a manifest: label, record file, headline values.
struct PointEntry {
    label: String,
    file: String,
    /// `"complete"`, `"aborted"`, or `"failed"` (manifests written before
    /// run status existed index as `"complete"`).
    status: String,
    execution_time_ns: u64,
    events: u64,
}

/// A loaded manifest: fingerprints plus the point index.
struct Manifest {
    dir: PathBuf,
    name: String,
    grid_hash: String,
    metrics_fingerprint: String,
    points: Vec<PointEntry>,
}

/// Extracts the string value of the **first** `"key": "..."` field.
fn json_str_field(json: &str, key: &str) -> Option<String> {
    venice_bench::microbench::json_str_fields(json, key)
        .into_iter()
        .next()
}

/// Extracts the unsigned integer right after the first `"key": ` in `json`
/// (kept exact — the shared f64 extractor would lose precision on large
/// event counts).
fn json_u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)?;
    let digits: String = json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extracts the raw token (number) after the first `"key": ` occurrence.
fn json_raw_field(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

fn load_manifest(arg: &str) -> Manifest {
    let path = Path::new(arg);
    let (dir, manifest_path) = if path.is_dir() {
        (path.to_path_buf(), path.join("manifest.json"))
    } else {
        (
            path.parent().unwrap_or(Path::new(".")).to_path_buf(),
            path.to_path_buf(),
        )
    };
    let json = std::fs::read_to_string(&manifest_path).unwrap_or_else(|e| {
        panic!("cannot read manifest {}: {e}", manifest_path.display())
    });
    let points_at = json
        .find("\"points\": [")
        .unwrap_or_else(|| panic!("{}: no points index", manifest_path.display()));
    let mut points = Vec::new();
    for line in json[points_at..].lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let (Some(label), Some(file)) =
            (json_str_field(line, "label"), json_str_field(line, "file"))
        else {
            continue;
        };
        points.push(PointEntry {
            label,
            file,
            status: json_str_field(line, "status").unwrap_or_else(|| "complete".to_string()),
            execution_time_ns: json_u64_field(line, "execution_time_ns").unwrap_or(0),
            events: json_u64_field(line, "events").unwrap_or(0),
        });
    }
    Manifest {
        name: json_str_field(&json, "name").unwrap_or_default(),
        grid_hash: json_str_field(&json, "grid_hash").unwrap_or_default(),
        metrics_fingerprint: json_str_field(&json, "metrics_fingerprint").unwrap_or_default(),
        dir,
        points,
    }
}

/// Percent delta of `b` relative to `a` (`0` when both zero).
fn pct(a: u64, b: u64) -> f64 {
    if a == 0 {
        if b == 0 { 0.0 } else { f64::INFINITY }
    } else {
        (b as f64 - a as f64) / a as f64 * 100.0
    }
}

/// Folds the scout-cache axis segment out of a point label so cache-on
/// and cache-off runs of the same grid match up.
fn fold_cache_segment(label: &str) -> String {
    let mut out = label.to_string();
    for seg in ["/cache-off", "/cache-on", "/cache-checked"] {
        out = out.replace(seg, "/cache-*");
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag = |name: &str| -> bool {
        args.iter()
            .position(|a| a == name)
            .map(|at| args.remove(at))
            .is_some()
    };
    let strict = take_flag("--strict");
    let ignore_cache = take_flag("--ignore-scout-cache");
    if args.len() != 2 {
        eprintln!(
            "usage: sweep_diff [--strict] [--ignore-scout-cache] \
             <sweep-dir-or-manifest A> <B>"
        );
        std::process::exit(2);
    }
    let mut a = load_manifest(&args[0]);
    let mut b = load_manifest(&args[1]);
    if ignore_cache {
        for m in [&mut a, &mut b] {
            for p in &mut m.points {
                p.label = fold_cache_segment(&p.label);
            }
        }
    }

    println!("A: {} ({} points)  grid {}", a.name, a.points.len(), a.grid_hash);
    println!("B: {} ({} points)  grid {}", b.name, b.points.len(), b.grid_hash);
    if a.metrics_fingerprint == b.metrics_fingerprint {
        println!("metrics fingerprints MATCH ({}) — results are bit-identical", a.metrics_fingerprint);
    } else {
        println!(
            "metrics fingerprints differ: {} vs {}",
            a.metrics_fingerprint, b.metrics_fingerprint
        );
    }

    let mut mismatched_points = 0usize;
    let mut missing_in_b = 0usize;
    let mut failed_points = 0usize;
    let mut compared = 0usize;
    // Pair points by (label, occurrence) in manifest order: labels can
    // legally repeat after `--ignore-scout-cache` folding (a manifest that
    // carries both cache modes, like the `scoutcache` grid), so each B
    // point is consumed at most once instead of first-match winning twice.
    let mut b_used = vec![false; b.points.len()];
    println!(
        "\n{:<64} {:>14} {:>10} {:>10} {:>12}",
        "point (label)", "exec Δ%", "events Δ%", "confl Δ", "energy"
    );
    for pa in &a.points {
        let Some(bi) =
            (0..b.points.len()).find(|&i| !b_used[i] && b.points[i].label == pa.label)
        else {
            println!("{:<64} -- only in A --", pa.label);
            missing_in_b += 1;
            continue;
        };
        b_used[bi] = true;
        let pb = &b.points[bi];
        // A panicked point's record is a placeholder, not metrics: report
        // it instead of diffing meaningless zeros.
        if pa.status == "failed" || pb.status == "failed" {
            let side = match (pa.status.as_str(), pb.status.as_str()) {
                ("failed", "failed") => "A and B",
                ("failed", _) => "A",
                _ => "B",
            };
            println!("{:<64} -- FAILED in {side} --", pa.label);
            failed_points += 1;
            continue;
        }
        compared += 1;
        // Prefer the full point records for deeper metrics; fall back to
        // the manifest's headline numbers when a record is unreadable.
        let ra = std::fs::read_to_string(a.dir.join(&pa.file)).ok();
        let rb = std::fs::read_to_string(b.dir.join(&pb.file)).ok();
        let field = |r: &Option<String>, key: &str, fallback: u64| {
            r.as_deref()
                .and_then(|j| json_u64_field(j, key))
                .unwrap_or(fallback)
        };
        let (exec_a, exec_b) = (
            field(&ra, "execution_time_ns", pa.execution_time_ns),
            field(&rb, "execution_time_ns", pb.execution_time_ns),
        );
        let (ev_a, ev_b) = (field(&ra, "events", pa.events), field(&rb, "events", pb.events));
        let (cf_a, cf_b) = (
            field(&ra, "conflicted_requests", 0),
            field(&rb, "conflicted_requests", 0),
        );
        let en_a = ra.as_deref().and_then(|j| json_raw_field(j, "energy_mj"));
        let en_b = rb.as_deref().and_then(|j| json_raw_field(j, "energy_mj"));
        let energy_same = en_a == en_b;
        let same = exec_a == exec_b && ev_a == ev_b && cf_a == cf_b && energy_same;
        if !same {
            mismatched_points += 1;
        }
        // Print only differing points (plus a one-line summary below);
        // identical points would drown the signal on big grids.
        if !same {
            println!(
                "{:<64} {:>+13.3}% {:>+9.3}% {:>+10} {:>12}",
                pa.label,
                pct(exec_a, exec_b),
                pct(ev_a, ev_b),
                cf_b as i64 - cf_a as i64,
                if energy_same { "same" } else { "DIFFERS" },
            );
        }
    }
    let only_in_b = b_used.iter().filter(|&&u| !u).count();
    for (pb, used) in b.points.iter().zip(&b_used) {
        if !used {
            println!("{:<64} -- only in B --", pb.label);
        }
    }

    println!(
        "\n{compared} points compared: {} identical, {mismatched_points} differing; \
         {failed_points} failed, {missing_in_b} only in A, {only_in_b} only in B",
        compared - mismatched_points
    );
    if strict
        && (mismatched_points > 0 || missing_in_b > 0 || only_in_b > 0 || failed_points > 0)
    {
        std::process::exit(1);
    }
}
