//! Figure 11: tail-latency CDFs (the 99th-percentile region) of the six
//! systems on src1_0 and hm_0, performance-optimized configuration.

fn main() {
    venice_bench::figures::fig11();
}
