//! Figure 11: tail-latency CDFs (the 99th-percentile region) of the six
//! systems on src1_0 and hm_0, performance-optimized configuration.

use venice_bench::{requests, results_dir, run_workload};
use venice_ssd::report::{f2, Table};
use venice_ssd::{all_systems, SsdConfig};

fn main() {
    let cfg = SsdConfig::performance_optimized();
    for name in ["src1_0", "hm_0"] {
        let mut results = run_workload(&cfg, &all_systems(), name, requests());
        let mut t = Table::new(
            ["quantile", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice", "Ideal"]
                .map(String::from)
                .to_vec(),
        );
        let points = 21;
        let cdfs: Vec<Vec<(venice_sim::SimDuration, f64)>> = results
            .iter_mut()
            .map(|m| m.latencies.tail_cdf(0.99, points))
            .collect();
        for i in 0..points {
            let q = cdfs[0][i].1;
            t.row(
                std::iter::once(format!("{q:.4}"))
                    .chain(cdfs.iter().map(|c| f2(c[i].0.as_micros_f64())))
                    .collect(),
            );
        }
        println!("\n# Figure 11: {name} tail latency CDF (latencies in µs at quantile)\n");
        print!("{}", t.to_markdown());
        t.write_csv(results_dir().join(format!("fig11-{name}.csv")))
            .expect("write csv");
        // Headline number: p99 reduction of Venice vs Baseline.
        let p99 = |idx: usize| cdfs[idx][0].0.as_micros_f64();
        println!(
            "\nVenice p99 vs Baseline p99: {:.1} µs vs {:.1} µs ({:.0}% lower)\n",
            p99(4),
            p99(0),
            (1.0 - p99(4) / p99(0)) * 100.0
        );
    }
}
