//! Performance-trajectory ledger: folds the current `results/bench_*.json`
//! microbench artifacts into the repo-top `BENCH_dispatch.json` /
//! `BENCH_scout.json` ledgers, one entry per engine revision.
//!
//! ```sh
//! cargo run --release -p venice-bench --bin ablate_routing   # refresh results/bench_dispatch.json
//! cargo run --release -p venice-bench --bin scout_stress     # refresh results/bench_scout.json
//! cargo run --release -p venice-bench --bin perf_ledger      # append both ledgers
//! ```
//!
//! Each ledger is one JSON document with an `entries` array; an entry
//! records the git revision, a fingerprint of the source artifact, and the
//! headline aggregates (scenario count, mean speedup, mean events/s of the
//! optimized engine). Re-running against an unchanged artifact is a no-op
//! (the fingerprint dedups), so CI can invoke this unconditionally; the
//! per-PR trajectory accumulates across revisions.
//!
//! Flags: `--dir <path>` (ledger directory, default `.` — the repo top
//! when run via cargo).

use std::path::{Path, PathBuf};

use venice_bench::microbench::{json_f64_fields, json_str_fields};
use venice_ssd::report::{f2, json_str};

/// FNV-1a 64-bit over `bytes` (the artifact fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// `git describe --always --dirty` (provenance only, never compared).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Mean of `values` (`None` when empty).
fn mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

/// Folds one microbench artifact into one ledger entry line, or explains
/// why it cannot (missing artifact is a skip, not an error: the ledgers
/// only grow on machines that ran the benches).
fn entry_for(source: &Path, throughput_key: &str) -> Result<String, String> {
    let json = std::fs::read_to_string(source)
        .map_err(|e| format!("cannot read {} ({e}); run its bench first", source.display()))?;
    let scenarios = json_str_fields(&json, "name").len();
    let speedups = json_f64_fields(&json, "speedup");
    let throughput = json_f64_fields(&json, throughput_key);
    if scenarios == 0 || speedups.is_empty() {
        return Err(format!("{} has no scenarios", source.display()));
    }
    Ok(format!(
        "  {{\"git\": {}, \"fingerprint\": \"{:016x}\", \"scenarios\": {scenarios}, \
         \"mean_speedup\": {}, \"mean_{throughput_key}\": {}}}",
        json_str(&git_describe()),
        fnv1a(json.as_bytes()),
        f2(mean(&speedups).unwrap_or(0.0)),
        f2(mean(&throughput).unwrap_or(0.0)),
    ))
}

/// Appends `entry` to the ledger at `path` (creating it), unless the last
/// entry already carries the same artifact fingerprint.
fn append(path: &Path, ledger_name: &str, entry: String) -> std::io::Result<bool> {
    let mut entries: Vec<String> = match std::fs::read_to_string(path) {
        Ok(doc) => doc
            .lines()
            .filter(|l| l.trim_start().starts_with('{') && l.contains("\"git\""))
            .map(|l| l.trim_end_matches(',').to_string())
            .collect(),
        Err(_) => Vec::new(),
    };
    let fp = |e: &str| {
        e.find("\"fingerprint\": ")
            .map(|at| e[at..].chars().take(36).collect::<String>())
    };
    if entries.last().is_some_and(|last| fp(last) == fp(&entry)) {
        return Ok(false);
    }
    entries.push(entry);
    let doc = format!(
        "{{\n \"ledger\": {},\n \"entries\": [\n{}\n ]\n}}\n",
        json_str(ledger_name),
        entries.join(",\n"),
    );
    std::fs::write(path, doc)?;
    Ok(true)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = PathBuf::from(args.get(i).expect("missing value after --dir"));
            }
            other => panic!("unknown flag {other:?} (only --dir is supported)"),
        }
        i += 1;
    }
    let results = venice_bench::results_dir();
    let ledgers = [
        ("dispatch", "events_per_sec_incremental", "BENCH_dispatch.json"),
        ("scout", "events_per_sec_cache_on", "BENCH_scout.json"),
    ];
    for (name, throughput_key, ledger_file) in ledgers {
        let source = results.join(format!("bench_{name}.json"));
        match entry_for(&source, throughput_key) {
            Err(why) => eprintln!("[perf-ledger] {name}: skipped ({why})"),
            Ok(entry) => {
                let path = dir.join(ledger_file);
                match append(&path, name, entry) {
                    Ok(true) => println!("[perf-ledger] {name}: appended to {}", path.display()),
                    Ok(false) => {
                        println!("[perf-ledger] {name}: unchanged artifact, nothing appended")
                    }
                    Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
                }
            }
        }
    }
}
