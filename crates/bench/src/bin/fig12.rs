//! Figure 12: speedups on the six mixed workloads of Table 3
//! (performance-optimized configuration), run as one sweep grid over the
//! Table 3 workload axis.

fn main() {
    venice_bench::figures::fig12();
}
