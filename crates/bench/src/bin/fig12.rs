//! Figure 12: speedups on the six mixed workloads of Table 3
//! (performance-optimized configuration).

use venice_bench::{requests, results_dir, run_trace, speedup};
use venice_interconnect::FabricKind;
use venice_sim::stats::geometric_mean;
use venice_ssd::report::{f2, Table};
use venice_ssd::{all_systems, SsdConfig};
use venice_workloads::mix;

fn main() {
    let cfg = SsdConfig::performance_optimized();
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];
    let mut t = Table::new(
        ["mix", "pSSD", "pnSSD", "NoSSD", "Venice", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for m in &mix::TABLE3 {
        // Mixes combine 2–3 streams; keep the total comparable to the
        // single-workload runs.
        let per_stream = requests() / m.constituents.len();
        let trace = mix::generate(m, per_stream);
        let results = run_trace(&cfg, &all_systems(), &trace);
        let s: Vec<f64> = order.iter().map(|&k| speedup(&results, k)).collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(m.name.to_string())
                .chain(s.iter().map(|&v| f2(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("GMEAN".to_string())
            .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 12: mixed workloads (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig12.csv")).expect("write csv");
}
