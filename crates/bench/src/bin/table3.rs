//! Table 3: the mixed workloads — constituents, description, and the
//! published vs generated merged inter-arrival time.

use venice_ssd::report::{f2, Table};
use venice_workloads::mix;

fn main() {
    let mut t = Table::new(
        [
            "mix",
            "constituents",
            "description",
            "interarrival us (paper)",
            "interarrival us (ours)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in &mix::TABLE3 {
        let stats = mix::generate(m, 1000).stats();
        t.row(vec![
            m.name.into(),
            m.constituents.join(" + "),
            m.description.into(),
            f2(m.avg_interarrival_us),
            f2(stats.avg_interarrival_us),
        ]);
    }
    println!("# Table 3: mixed workloads, paper vs generated\n");
    print!("{}", t.to_markdown());
    t.write_csv(venice_bench::results_dir().join("table3.csv"))
        .expect("write csv");
}
