//! Table 3: the mixed workloads — constituents, description, and the
//! published vs generated merged inter-arrival time.

fn main() {
    venice_bench::figures::table3();
}
