use venice_interconnect::mesh::MeshState;
use venice_interconnect::{Mesh2D, NodeId, LinkId, Direction};
use venice_sim::rng::{Lfsr2, Xorshift64Star};
use std::collections::VecDeque;

fn bfs_path_exists(m: &MeshState, src: NodeId, dst: NodeId) -> bool {
    let t = m.topology();
    let mut seen = vec![false; t.node_count()];
    let mut q = VecDeque::new();
    seen[src.0 as usize] = true;
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        if n == dst { return true; }
        for d in Direction::ALL {
            if let (Some(nb), Some(l)) = (t.neighbor(n, d), t.link(n, d)) {
                if m.link_free(l) && !seen[nb.0 as usize] {
                    seen[nb.0 as usize] = true;
                    q.push_back(nb);
                }
            }
        }
    }
    false
}

fn main() {
    let t = Mesh2D::new(8, 8);
    let mut rng = Xorshift64Star::new(7);
    let mut lfsr = Lfsr2::new();
    let mut fails_with_path = 0u32;
    let mut fails_no_path = 0u32;
    let mut ok = 0u32;
    for _trial in 0..2000 {
        let mut m = MeshState::new(t, 8);
        // Reserve 5-7 random circuits from west-edge FCs.
        let n_circ = 5 + rng.next_bounded(3) as u8;
        let mut used_fc = vec![];
        for fc in 0..n_circ {
            let src = t.node_at(u16::from(fc), 0);
            let dst = NodeId(rng.next_bounded(64) as u16);
            if m.scout_walk(fc, src, dst, &mut lfsr).is_ok() { used_fc.push(fc); }
        }
        // Now attempt one more from the last FC.
        let fc = 7u8;
        let src = t.node_at(7, 0);
        let dst = NodeId(rng.next_bounded(64) as u16);
        let reachable = bfs_path_exists(&m, src, dst);
        match m.scout_walk(fc, src, dst, &mut lfsr) {
            Ok(_) => ok += 1,
            Err(_) => {
                if reachable { fails_with_path += 1; } else { fails_no_path += 1; }
            }
        }
        let _ = LinkId(0);
    }
    println!("ok={ok} fails_with_path={fails_with_path} fails_no_path={fails_no_path}");
}
