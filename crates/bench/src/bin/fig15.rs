//! Figure 15: sensitivity to the interconnect configuration — 4×16, 8×8,
//! and 16×4 flash-controller arrangements, speedup over Baseline averaged
//! (geometric mean) across all Table 2 workloads, run as one sweep grid
//! with a shape axis. pnSSD is omitted, as in the paper, because it
//! requires an N×N array.

fn main() {
    venice_bench::figures::fig15();
}
