//! Figure 15: sensitivity to the interconnect configuration — 4×16, 8×8,
//! and 16×4 flash-controller arrangements, speedup over Baseline averaged
//! (geometric mean) across all Table 2 workloads. pnSSD is omitted, as in
//! the paper, because it requires an N×N array.

use venice_bench::{requests, results_dir, run_catalog, speedup};
use venice_interconnect::FabricKind;
use venice_sim::stats::geometric_mean;
use venice_ssd::report::{f2, Table};
use venice_ssd::SsdConfig;

fn main() {
    let systems = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];
    let mut t = Table::new(
        ["shape", "pSSD", "NoSSD", "Venice", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    for (rows, cols) in [(4u16, 16u16), (8, 8), (16, 4)] {
        let cfg = SsdConfig::performance_optimized().with_shape(rows, cols);
        let per_workload = run_catalog(&cfg, &systems, requests());
        let gmean = |k: FabricKind| {
            geometric_mean(per_workload.iter().map(|(_, r)| speedup(r, k)))
        };
        t.row(vec![
            format!("{rows}x{cols}"),
            f2(gmean(FabricKind::Pssd)),
            f2(gmean(FabricKind::NoSsd)),
            f2(gmean(FabricKind::Venice)),
            f2(gmean(FabricKind::Ideal)),
        ]);
    }
    println!("# Figure 15: controller-count sensitivity (GMEAN speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig15.csv")).expect("write csv");
}
