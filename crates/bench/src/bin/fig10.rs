//! Figure 10: SSD throughput (IOPS) of Baseline, pSSD, pnSSD, NoSSD and
//! Venice, normalized to the path-conflict-free SSD, for both Table 1
//! configurations.

fn main() {
    venice_bench::figures::fig10();
}
