//! Figure 10: SSD throughput (IOPS) of Baseline, pSSD, pnSSD, NoSSD and
//! Venice, normalized to the path-conflict-free SSD, for both Table 1
//! configurations.

use venice_bench::{metrics, requests, results_dir, run_catalog};
use venice_interconnect::FabricKind;
use venice_sim::stats::arithmetic_mean;
use venice_ssd::report::{f3, Table};
use venice_ssd::{all_systems, SsdConfig};

fn main() {
    for (tag, cfg) in [
        ("a-performance-optimized", SsdConfig::performance_optimized()),
        ("b-cost-optimized", SsdConfig::cost_optimized()),
    ] {
        let rows = run_catalog(&cfg, &all_systems(), requests());
        let order = [
            FabricKind::Baseline,
            FabricKind::Pssd,
            FabricKind::PnSsd,
            FabricKind::NoSsd,
            FabricKind::Venice,
        ];
        let mut t = Table::new(
            ["workload", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice"]
                .map(String::from)
                .to_vec(),
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
        for (name, results) in &rows {
            let ideal = metrics(results, FabricKind::Ideal).iops();
            let s: Vec<f64> = order
                .iter()
                .map(|&k| metrics(results, k).iops() / ideal)
                .collect();
            for (c, v) in cols.iter_mut().zip(&s) {
                c.push(*v);
            }
            t.row(
                std::iter::once(name.clone())
                    .chain(s.iter().map(|&v| f3(v)))
                    .collect(),
            );
        }
        t.row(
            std::iter::once("AVG".to_string())
                .chain(cols.iter().map(|c| f3(arithmetic_mean(c.iter().copied()))))
                .collect(),
        );
        println!("\n# Figure 10{tag}: throughput normalized to the ideal SSD\n");
        print!("{}", t.to_markdown());
        t.write_csv(results_dir().join(format!("fig10{tag}.csv")))
            .expect("write csv");
    }
}
