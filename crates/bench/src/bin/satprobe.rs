//! Saturated-throughput probe: floods each fabric with back-to-back 4 KiB
//! random reads and prints the sustained IOPS — the capacity calibration
//! signal behind the figure harnesses.
use venice_interconnect::FabricKind;
use venice_ssd::{SsdConfig, SsdSim};
use venice_workloads::WorkloadSpec;

fn main() {
    let trace = WorkloadSpec::new("flood", 100.0, 4.0, 0.05)
        .footprint_mb(512)
        .zipf_theta(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.0))
        .seq_fraction(0.0)
        .size_sigma(0.0)
        .burst_mean(1.0)
        .generate(8000);
    for kind in FabricKind::ALL {
        let cfg = SsdConfig::performance_optimized().sized_for_footprint(trace.footprint_bytes());
        let m = SsdSim::new(cfg, kind, &trace).run();
        println!(
            "{kind:<9} exec={:>9} kiops={:>8.0} conflicts%={:>5.1} noFc={:>7} acq={:>6} hops/acq={:.2}",
            m.execution_time.to_string(),
            m.iops() / 1e3,
            m.conflict_pct(),
            m.fabric.controller_unavailable,
            m.fabric.acquisitions,
            m.fabric.hops_total as f64 / m.fabric.acquisitions.max(1) as f64,
        );
    }
}
