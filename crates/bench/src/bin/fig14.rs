//! Figure 14: average power and energy consumption of pSSD, pnSSD, NoSSD
//! and Venice, normalized to the Baseline SSD (performance-optimized).

use venice_bench::{metrics, requests, results_dir, run_catalog};
use venice_interconnect::FabricKind;
use venice_sim::stats::arithmetic_mean;
use venice_ssd::report::{f3, Table};
use venice_ssd::SsdConfig;

fn main() {
    let cfg = SsdConfig::performance_optimized();
    let systems = venice_bench::real_systems();
    let rows = run_catalog(&cfg, &systems, requests());
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ];
    for (tag, f) in [
        ("a-power", true),   // normalized average power
        ("b-energy", false), // normalized energy
    ] {
        let mut t = Table::new(
            ["workload", "pSSD", "pnSSD", "NoSSD", "Venice"]
                .map(String::from)
                .to_vec(),
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
        for (name, results) in &rows {
            let base = metrics(results, FabricKind::Baseline);
            let s: Vec<f64> = order
                .iter()
                .map(|&k| {
                    let m = metrics(results, k);
                    if f {
                        m.avg_power_mw / base.avg_power_mw
                    } else {
                        m.energy_mj / base.energy_mj
                    }
                })
                .collect();
            for (c, v) in cols.iter_mut().zip(&s) {
                c.push(*v);
            }
            t.row(
                std::iter::once(name.clone())
                    .chain(s.iter().map(|&v| f3(v)))
                    .collect(),
            );
        }
        t.row(
            std::iter::once("AVG".to_string())
                .chain(cols.iter().map(|c| f3(arithmetic_mean(c.iter().copied()))))
                .collect(),
        );
        let title = if f { "power" } else { "energy" };
        println!("\n# Figure 14{tag}: normalized {title} (vs Baseline)\n");
        print!("{}", t.to_markdown());
        t.write_csv(results_dir().join(format!("fig14{tag}.csv")))
            .expect("write csv");
    }
}
