//! Figure 14: average power and energy consumption of pSSD, pnSSD, NoSSD
//! and Venice, normalized to the Baseline SSD (performance-optimized).

fn main() {
    venice_bench::figures::fig14();
}
