//! Table 1: the evaluated SSD configurations and Venice design parameters.

fn main() {
    venice_bench::figures::table1();
}
