//! Table 1: the evaluated SSD configurations and Venice design parameters.

use venice_ssd::report::Table;
use venice_ssd::SsdConfig;

fn main() {
    let mut t = Table::new(
        ["parameter", "performance-optimized", "cost-optimized"]
            .map(String::from)
            .to_vec(),
    );
    let p = SsdConfig::performance_optimized();
    let c = SsdConfig::cost_optimized();
    let rows: Vec<(&str, String, String)> = vec![
        (
            "NAND config",
            format!(
                "{} channels x {} chips, {} die/chip, {} planes/die, {} B page",
                p.fabric.rows,
                p.fabric.cols,
                p.array.chip.dies,
                p.array.chip.planes_per_die,
                p.array.chip.page_size
            ),
            format!(
                "{} channels x {} chips, {} die/chip, {} planes/die, {} B page",
                c.fabric.rows,
                c.fabric.cols,
                c.array.chip.dies,
                c.array.chip.planes_per_die,
                c.array.chip.page_size
            ),
        ),
        (
            "Read (tR)",
            p.timing.t_r.to_string(),
            c.timing.t_r.to_string(),
        ),
        (
            "Program (tPROG)",
            p.timing.t_prog.to_string(),
            c.timing.t_prog.to_string(),
        ),
        (
            "Erase (tBERS)",
            p.timing.t_bers.to_string(),
            c.timing.t_bers.to_string(),
        ),
        (
            "Channel I/O rate",
            format!("{:.1} GB/s", p.fabric.bus_bytes_per_ns),
            format!("{:.1} GB/s", c.fabric.bus_bytes_per_ns),
        ),
        (
            "Venice topology",
            format!("{}x{} 2D mesh, 8-bit 1 GHz links", p.fabric.rows, p.fabric.cols),
            format!("{}x{} 2D mesh, 8-bit 1 GHz links", c.fabric.rows, c.fabric.cols),
        ),
        (
            "Routing / switching",
            "non-minimal fully-adaptive / circuit switching".into(),
            "non-minimal fully-adaptive / circuit switching".into(),
        ),
    ];
    for (name, a, b) in rows {
        t.row(vec![name.to_string(), a, b]);
    }
    println!("# Table 1: evaluated configurations\n");
    print!("{}", t.to_markdown());
    t.write_csv(venice_bench::results_dir().join("table1.csv"))
        .expect("write csv");
}
