//! Table 2: characteristics of the evaluated I/O traces — the published
//! statistics next to the statistics of the synthetic traces we actually
//! generate, verifying the calibration.

fn main() {
    venice_bench::figures::table2();
}
