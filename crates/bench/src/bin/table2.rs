//! Table 2: characteristics of the evaluated I/O traces — the published
//! statistics next to the statistics of the synthetic traces we actually
//! generate, verifying the calibration.

use venice_ssd::report::{f2, Table};
use venice_workloads::catalog;

fn main() {
    let mut t = Table::new(
        [
            "trace",
            "suite",
            "read% (paper)",
            "read% (ours)",
            "avg KB (paper)",
            "avg KB (ours)",
            "interarrival us (paper)",
            "interarrival us (ours)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in &catalog::TABLE2 {
        let stats = catalog::spec(e).generate(3000).stats();
        t.row(vec![
            e.name.into(),
            e.suite.into(),
            f2(e.read_pct),
            f2(stats.read_pct),
            f2(e.avg_request_kb),
            f2(stats.avg_request_kb),
            f2(e.avg_interarrival_us),
            f2(stats.avg_interarrival_us),
        ]);
    }
    println!("# Table 2: trace characteristics, paper vs generated\n");
    print!("{}", t.to_markdown());
    t.write_csv(venice_bench::results_dir().join("table2.csv"))
        .expect("write csv");
}
