//! Figure 13: percentage of I/O requests that experience path conflicts in
//! each system (performance-optimized configuration).

fn main() {
    venice_bench::figures::fig13();
}
