//! Figure 13: percentage of I/O requests that experience path conflicts in
//! each system (performance-optimized configuration).

use venice_bench::{metrics, requests, results_dir, run_catalog};
use venice_interconnect::FabricKind;
use venice_sim::stats::arithmetic_mean;
use venice_ssd::report::{f2, Table};
use venice_ssd::{all_systems, SsdConfig};

fn main() {
    let cfg = SsdConfig::performance_optimized();
    let rows = run_catalog(&cfg, &all_systems(), requests());
    let order = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ];
    let mut t = Table::new(
        ["workload", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in &rows {
        let s: Vec<f64> = order
            .iter()
            .map(|&k| metrics(results, k).conflict_pct())
            .collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(name.clone())
                .chain(s.iter().map(|&v| f2(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("AVG".to_string())
            .chain(cols.iter().map(|c| f2(arithmetic_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 13: % of I/O requests experiencing path conflicts\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig13.csv")).expect("write csv");
}
