//! Figure 9: speedup in overall execution time of pSSD, pnSSD, NoSSD,
//! Venice, and the path-conflict-free SSD over the Baseline SSD, on the
//! performance-optimized (a) and cost-optimized (b) configurations.

use venice_bench::{requests, results_dir, run_catalog, speedup};
use venice_interconnect::FabricKind;
use venice_sim::stats::geometric_mean;
use venice_ssd::report::{f2, Table};
use venice_ssd::{all_systems, SsdConfig};

fn main() {
    for (tag, cfg) in [
        ("a-performance-optimized", SsdConfig::performance_optimized()),
        ("b-cost-optimized", SsdConfig::cost_optimized()),
    ] {
        let rows = run_catalog(&cfg, &all_systems(), requests());
        let mut t = Table::new(
            ["workload", "pSSD", "pnSSD", "NoSSD", "Venice", "Path-conflict-free"]
                .map(String::from)
                .to_vec(),
        );
        let order = [
            FabricKind::Pssd,
            FabricKind::PnSsd,
            FabricKind::NoSsd,
            FabricKind::Venice,
            FabricKind::Ideal,
        ];
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
        for (name, results) in &rows {
            let s: Vec<f64> = order.iter().map(|&k| speedup(results, k)).collect();
            for (c, v) in cols.iter_mut().zip(&s) {
                c.push(*v);
            }
            t.row(
                std::iter::once(name.clone())
                    .chain(s.iter().map(|&v| f2(v)))
                    .collect(),
            );
        }
        t.row(
            std::iter::once("GMEAN".to_string())
                .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
                .collect(),
        );
        println!("\n# Figure 9{tag}: speedup over Baseline\n");
        print!("{}", t.to_markdown());
        t.write_csv(results_dir().join(format!("fig09{tag}.csv")))
            .expect("write csv");
    }
}
