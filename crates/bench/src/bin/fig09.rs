//! Figure 9: speedup in overall execution time of pSSD, pnSSD, NoSSD,
//! Venice, and the path-conflict-free SSD over the Baseline SSD, on the
//! performance-optimized (a) and cost-optimized (b) configurations.

fn main() {
    venice_bench::figures::fig09();
}
