//! Calibration harness: runs a subset of catalog workloads across all six
//! systems and prints the metrics the paper's figures anchor on, so the
//! workload-generator parameters can be tuned against Figure 4 / 9 / 13.

use venice_interconnect::FabricKind;
use venice_ssd::{all_systems, run_systems, SsdConfig};
use venice_workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let names: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(|s| s.as_str()).collect()
    } else {
        vec!["hm_0", "proj_3", "src1_0", "YCSB_B", "ssd-10", "LUN3", "prxy_0"]
    };
    let cfg = SsdConfig::performance_optimized();
    println!(
        "{:<10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} | conf%: {:>5} {:>6} {:>6}",
        "workload", "base(ms)", "pSSD", "pnSSD", "NoSSD", "Venice", "Ideal", "base", "venice", "nossd"
    );
    for name in names {
        let Some(spec) = catalog::by_name(name) else {
            eprintln!("unknown workload {name}");
            continue;
        };
        let trace = spec.generate(requests);
        let results = run_systems(&cfg, &all_systems(), &trace);
        let base = &results[0];
        let s = |k: FabricKind| {
            let m = results.iter().find(|m| m.system == k).unwrap();
            m.speedup_over(base)
        };
        let c = |k: FabricKind| {
            results
                .iter()
                .find(|m| m.system == k)
                .unwrap()
                .conflict_pct()
        };
        println!(
            "{:<10} {:>9.3} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} |        {:>5.1} {:>6.2} {:>6.1}",
            name,
            base.execution_time.as_secs_f64() * 1e3,
            s(FabricKind::Pssd),
            s(FabricKind::PnSsd),
            s(FabricKind::NoSsd),
            s(FabricKind::Venice),
            s(FabricKind::Ideal),
            c(FabricKind::Baseline),
            c(FabricKind::Venice),
            c(FabricKind::NoSsd),
        );
    }
}
