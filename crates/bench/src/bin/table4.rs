//! Table 4: power and area overheads of Venice's router and links, plus the
//! §6.6 headline numbers (router PCB fraction, total link-area reduction).

fn main() {
    venice_bench::figures::table4();
}
