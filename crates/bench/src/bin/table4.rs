//! Table 4: power and area overheads of Venice's router and links, plus the
//! §6.6 headline numbers (router PCB fraction, total link-area reduction).

use venice_interconnect::{table4, AreaModel, LinkPower};
use venice_ssd::report::Table;

fn main() {
    let power = LinkPower::paper();
    let area = AreaModel::paper();
    let mut t = Table::new(
        ["component", "# of instances", "avg power (mW, 4KB transfer)", "area"]
            .map(String::from)
            .to_vec(),
    );
    for row in table4(&power, &area) {
        t.row(vec![
            row.component.into(),
            row.instances.into(),
            format!("{:.3}", row.avg_power_mw),
            row.area,
        ]);
    }
    println!("# Table 4: power and area overheads of Venice\n");
    print!("{}", t.to_markdown());
    println!();
    println!(
        "Router PCB footprint: {:.1} mm^2 = {:.0}% of a {:.0} mm^2 flash chip",
        area.router_pcb_mm2(),
        area.router_overhead_fraction() * 100.0,
        area.flash_chip_mm2,
    );
    println!(
        "Link power vs shared bus: {} mW vs {} mW ({:.0}% lower)",
        power.link_mw,
        power.bus_mw,
        (1.0 - power.link_mw / power.bus_mw) * 100.0,
    );
    println!(
        "Total link area for the 8x8 mesh (112 links): {:.0}% lower than 8 shared channels",
        area.link_area_reduction(8, 8) * 100.0,
    );
    t.write_csv(venice_bench::results_dir().join("table4.csv"))
        .expect("write csv");
}
