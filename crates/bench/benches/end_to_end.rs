//! Macro-benchmark: a full small SSD simulation per fabric. This measures
//! the simulator's own performance (events per second), which bounds how
//! large the figure reproductions can be. Uses the in-tree
//! [`venice_bench::microbench`] harness (no registry access for criterion).

use std::hint::black_box;
use std::time::Duration;
use venice_bench::microbench::Runner;
use venice_interconnect::FabricKind;
use venice_ssd::{SsdConfig, SsdSim};
use venice_workloads::WorkloadSpec;

fn main() {
    let mut r = Runner::new("end_to_end").sample_budget(Duration::from_millis(400));
    let trace = WorkloadSpec::new("bench", 70.0, 8.0, 10.0)
        .footprint_mb(64)
        .generate(300);
    for kind in [FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal] {
        r.bench(&format!("simulate_300_requests_{kind}"), || {
            let cfg =
                SsdConfig::performance_optimized().sized_for_footprint(trace.footprint_bytes());
            let m = SsdSim::new(cfg, kind, black_box(&trace)).run();
            black_box(m.completed_requests);
        });
    }
    r.finish();
}
