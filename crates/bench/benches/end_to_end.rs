//! Criterion macro-benchmark: a full small SSD simulation per fabric. This
//! measures the simulator's own performance (events per second), which
//! bounds how large the figure reproductions can be.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use venice_interconnect::FabricKind;
use venice_ssd::{SsdConfig, SsdSim};
use venice_workloads::WorkloadSpec;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = WorkloadSpec::new("bench", 70.0, 8.0, 10.0)
        .footprint_mb(64)
        .generate(300);
    for kind in [FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal] {
        c.bench_function(&format!("simulate_300_requests_{kind}"), |b| {
            b.iter(|| {
                let cfg = SsdConfig::performance_optimized()
                    .sized_for_footprint(trace.footprint_bytes());
                let m = SsdSim::new(cfg, kind, black_box(&trace)).run();
                black_box(m.completed_requests)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
