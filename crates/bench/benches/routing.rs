//! Criterion micro-benchmarks of the Venice routing machinery: scout walks
//! on idle and congested meshes, and XY path construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use venice_interconnect::mesh::MeshState;
use venice_interconnect::{Mesh2D, NodeId};
use venice_sim::rng::Lfsr2;

fn bench_scout_idle(c: &mut Criterion) {
    let topo = Mesh2D::new(8, 8);
    c.bench_function("scout_walk_idle_corner_to_corner", |b| {
        let mut mesh = MeshState::new(topo, 8);
        let mut lfsr = Lfsr2::new();
        b.iter(|| {
            let (p, _) = mesh
                .scout_walk(0, NodeId(0), black_box(NodeId(63)), &mut lfsr)
                .expect("idle mesh routes");
            mesh.release(&p);
        });
    });
}

fn bench_scout_congested(c: &mut Criterion) {
    let topo = Mesh2D::new(8, 8);
    c.bench_function("scout_walk_with_6_circuits", |b| {
        let mut mesh = MeshState::new(topo, 8);
        let mut lfsr = Lfsr2::new();
        // Six long-lived circuits criss-crossing the mesh.
        let mut held = Vec::new();
        for fc in 0..6u8 {
            let src = topo.node_at(u16::from(fc), 0);
            let dst = topo.node_at(7 - u16::from(fc) % 8, 6);
            if let Ok((p, _)) = mesh.scout_walk(fc, src, dst, &mut lfsr) {
                held.push(p);
            }
        }
        b.iter(|| {
            match mesh.scout_walk(7, NodeId(7 * 8), black_box(NodeId(31)), &mut lfsr) {
                Ok((p, _)) => mesh.release(&p),
                Err(f) => {
                    black_box(f.steps);
                }
            }
        });
    });
}

fn bench_xy(c: &mut Criterion) {
    let topo = Mesh2D::new(8, 8);
    let mesh = MeshState::new(topo, 8);
    c.bench_function("xy_path_corner_to_corner", |b| {
        b.iter(|| black_box(mesh.xy_path(NodeId(0), black_box(NodeId(63)))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scout_idle, bench_scout_congested, bench_xy
}
criterion_main!(benches);
