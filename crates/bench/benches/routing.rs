//! Micro-benchmarks of the Venice routing machinery: scout walks on idle and
//! congested meshes, and XY path construction. Uses the in-tree
//! [`venice_bench::microbench`] harness (no registry access for criterion).

use std::hint::black_box;
use venice_bench::microbench::Runner;
use venice_interconnect::mesh::MeshState;
use venice_interconnect::{Mesh2D, NodeId};
use venice_sim::rng::Lfsr2;

fn main() {
    let mut r = Runner::new("routing");
    let topo = Mesh2D::new(8, 8);

    {
        let mut mesh = MeshState::new(topo, 8);
        let mut lfsr = Lfsr2::new();
        r.bench("scout_walk_idle_corner_to_corner", || {
            let (p, _) = mesh
                .scout_walk(0, NodeId(0), black_box(NodeId(63)), &mut lfsr)
                .expect("idle mesh routes");
            mesh.release_owned(p);
        });
    }

    {
        let mut mesh = MeshState::new(topo, 8);
        let mut lfsr = Lfsr2::new();
        // Six long-lived circuits criss-crossing the mesh.
        let mut held = Vec::new();
        for fc in 0..6u8 {
            let src = topo.node_at(u16::from(fc), 0);
            let dst = topo.node_at(7 - u16::from(fc) % 8, 6);
            if let Ok((p, _)) = mesh.scout_walk(fc, src, dst, &mut lfsr) {
                held.push(p);
            }
        }
        r.bench("scout_walk_with_6_circuits", || {
            match mesh.scout_walk(7, NodeId(7 * 8), black_box(NodeId(31)), &mut lfsr) {
                Ok((p, _)) => mesh.release_owned(p),
                Err(f) => {
                    black_box(f.steps);
                }
            }
        });
    }

    {
        let mut mesh = MeshState::new(topo, 8);
        r.bench("xy_path_corner_to_corner", || {
            let p = mesh.xy_path(NodeId(0), black_box(NodeId(63)));
            black_box(p.hops());
            mesh.recycle(p);
        });
    }

    r.finish();
}
