//! Micro-benchmarks of the fabric acquire/transfer/release cycle for every
//! design — the inner loop of the SSD simulation. Uses the in-tree
//! [`venice_bench::microbench`] harness (no registry access for criterion).

use std::hint::black_box;
use venice_bench::microbench::Runner;
use venice_interconnect::{build_fabric, FabricKind, FabricParams, NodeId};

fn main() {
    let mut r = Runner::new("fabrics");
    for kind in FabricKind::ALL {
        let mut fabric = build_fabric(kind, FabricParams::table1());
        r.bench(&format!("acquire_transfer_release_{kind}"), || {
            let grant = fabric
                .try_acquire(black_box(NodeId(42)))
                .expect("idle fabric grants");
            let d = fabric.transfer(&grant, black_box(4096));
            fabric.release(grant);
            black_box(d);
        });
    }
    r.finish();
}
