//! Criterion micro-benchmarks of the fabric acquire/transfer/release cycle
//! for every design — the inner loop of the SSD simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use venice_interconnect::{build_fabric, FabricKind, FabricParams, NodeId};

fn bench_fabric_cycle(c: &mut Criterion) {
    for kind in FabricKind::ALL {
        c.bench_function(&format!("acquire_transfer_release_{kind}"), |b| {
            let mut fabric = build_fabric(kind, FabricParams::table1());
            b.iter(|| {
                let grant = fabric
                    .try_acquire(black_box(NodeId(42)))
                    .expect("idle fabric grants");
                let d = fabric.transfer(&grant, black_box(4096));
                fabric.release(grant);
                black_box(d)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fabric_cycle
}
criterion_main!(benches);
