//! Microbenchmark + perf-smoke for the incremental ready-set dispatcher.
//!
//! Runs congestion-heavy workloads on growing meshes with the dispatch
//! round implemented both ways — the default incremental ready-set engine
//! and the retained full-scan reference (`DispatchScanKind`) — asserts the
//! two produce bit-identical metrics, and records the events/sec gain in
//! `results/bench_dispatch.json` (per-engine ns/iter also lands in
//! `results/bench_dispatch_scan.json` via the shared microbench harness).
//!
//! **Perf-smoke contract:** when a checked-in baseline
//! (`results/bench_dispatch_baseline.json`) exists, the run fails (exit 1)
//! if any scenario's incremental-over-full-scan speedup regressed more than
//! 30% below the baseline's. Set `VENICE_PERF_WARN_ONLY=1` to downgrade the
//! failure to a warning on noisy runners. Speedups are wall-clock *ratios*
//! on the same machine and binary, so the gate is robust to absolute
//! machine speed.

use std::hint::black_box;
use std::time::Duration;

use venice_bench::microbench::Runner;
use venice_interconnect::FabricKind;
use venice_ssd::{DispatchPolicyKind, DispatchScanKind, RunMetrics, SsdConfig, SsdSim};
use venice_workloads::WorkloadAxis;

/// One benched (mesh shape × fabric × policy × request budget) coordinate.
struct Scenario {
    name: &'static str,
    rows: u16,
    cols: u16,
    fabric: FabricKind,
    policy: DispatchPolicyKind,
    requests: usize,
}

/// Big congested meshes under two regimes. Under `RetryAll` on Venice the
/// run cost is dominated by the failed scout walks themselves (the policy
/// layer's territory, not the scan's), so the headline ready-set scenarios
/// are NoSSD — whose per-attempt cost is a cheap XY probe, leaving the
/// round scan as the overhead — and Venice under its `Auto`-selected
/// backoff, where most rounds dispatch little and the O(chips) scan is
/// pure waste for the reference engine.
const SCENARIOS: [Scenario; 4] = [
    Scenario {
        name: "congested_8x8_venice",
        rows: 8,
        cols: 8,
        fabric: FabricKind::Venice,
        policy: DispatchPolicyKind::RetryAll,
        requests: 400,
    },
    Scenario {
        name: "congested_16x16_nossd",
        rows: 16,
        cols: 16,
        fabric: FabricKind::NoSsd,
        policy: DispatchPolicyKind::RetryAll,
        requests: 400,
    },
    Scenario {
        name: "congested_16x16_venice_auto",
        rows: 16,
        cols: 16,
        fabric: FabricKind::Venice,
        policy: DispatchPolicyKind::Auto,
        requests: 400,
    },
    Scenario {
        name: "congested_32x32_nossd",
        rows: 32,
        cols: 32,
        fabric: FabricKind::NoSsd,
        policy: DispatchPolicyKind::RetryAll,
        requests: 250,
    },
];

/// Fraction of the baseline speedup a scenario may lose before the smoke
/// fails (>30% events/sec regression).
const REGRESSION_FLOOR: f64 = 0.7;

fn run(cfg: &SsdConfig, fabric: FabricKind, trace: &venice_workloads::Trace) -> RunMetrics {
    let sized = cfg.clone().sized_for_footprint(trace.footprint_bytes());
    SsdSim::new(sized, fabric, trace).run()
}

fn main() {
    let mut r = Runner::new("dispatch_scan").sample_budget(Duration::from_millis(250));
    let mut summary = String::from("{\n  \"bench\": \"dispatch_scan\",\n  \"scenarios\": [\n");
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (i, s) in SCENARIOS.iter().enumerate() {
        let trace = WorkloadAxis::congested().trace(s.requests);
        let base = SsdConfig::performance_optimized()
            .with_mesh(s.rows, s.cols)
            .with_dispatch_policy(s.policy);
        let incr_cfg = base.clone().with_dispatch_scan(DispatchScanKind::Incremental);
        let full_cfg = base.clone().with_dispatch_scan(DispatchScanKind::FullScan);
        // Correctness first: the two engines must agree bit-for-bit.
        let m_incr = run(&incr_cfg, s.fabric, &trace);
        let m_full = run(&full_cfg, s.fabric, &trace);
        assert_eq!(m_incr, m_full, "{}: engines diverged", s.name);
        let events = m_incr.events;

        let mut timed: Vec<f64> = Vec::new();
        for (tag, cfg) in [("incremental", &incr_cfg), ("full_scan", &full_cfg)] {
            let ms = {
                r.bench(&format!("{}_{}", s.name, tag), || {
                    black_box(run(cfg, s.fabric, black_box(&trace)));
                });
                r_last_ns(&r)
            };
            timed.push(ms);
        }
        let (ns_incr, ns_full) = (timed[0], timed[1]);
        let evps_incr = events as f64 / (ns_incr / 1e9);
        let evps_full = events as f64 / (ns_full / 1e9);
        let speedup = evps_incr / evps_full;
        println!(
            "dispatch_scan {:<28} {:>7.2}M ev/s incremental vs {:>7.2}M full-scan  ({:.2}x)",
            s.name,
            evps_incr / 1e6,
            evps_full / 1e6,
            speedup
        );
        summary.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}x{}\", \"fabric\": \"{}\", \
             \"policy\": \"{}\", \
             \"requests\": {}, \"events\": {}, \"events_per_sec_incremental\": {:.0}, \
             \"events_per_sec_full_scan\": {:.0}, \"speedup\": {:.3}}}{}\n",
            s.name,
            s.rows,
            s.cols,
            s.fabric.label(),
            s.policy.label(),
            s.requests,
            events,
            evps_incr,
            evps_full,
            speedup,
            if i + 1 == SCENARIOS.len() { "" } else { "," }
        ));
        speedups.push((s.name.to_string(), speedup));
    }
    summary.push_str("  ]\n}\n");
    r.finish();

    let dir = venice_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let out = dir.join("bench_dispatch.json");
    match std::fs::write(&out, &summary) {
        Ok(()) => println!("dispatch summary -> {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }

    // Perf-smoke gate against the checked-in baseline ratios.
    venice_bench::microbench::enforce_speedup_baseline(
        "dispatch_scan",
        &dir.join("bench_dispatch_baseline.json"),
        &speedups,
        REGRESSION_FLOOR,
    );
}

/// The ns/iter of the most recent [`Runner::bench`] call.
fn r_last_ns(r: &Runner) -> f64 {
    r.last_ns_per_iter().expect("bench just ran")
}
