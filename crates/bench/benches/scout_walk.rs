//! Microbenchmark + perf-smoke for the generation-stamped scout fast-fail
//! cache.
//!
//! Runs congestion-heavy workloads on scout-walk-bound Venice meshes with
//! the fast-fail cache off and on (`ScoutCacheKind`), asserts the two
//! engines produce bit-identical *simulated behavior* (only the cache's own
//! effort counters — fast-fails and invalidations — may differ), and
//! records the events/sec gain in `results/bench_scout.json` (per-engine
//! ns/iter also lands in `results/bench_scout_walk.json` via the shared
//! microbench harness).
//!
//! **Perf-smoke contract:** when a checked-in baseline
//! (`results/bench_scout_baseline.json`) exists, the run fails (exit 1) if
//! any scenario's cache-on-over-cache-off speedup regressed more than 30%
//! below the baseline's. Set `VENICE_PERF_WARN_ONLY=1` to downgrade the
//! failure to a warning on noisy runners. Speedups are wall-clock *ratios*
//! on the same machine and binary, so the gate is robust to absolute
//! machine speed.

use std::hint::black_box;
use std::time::Duration;

use venice_bench::microbench::Runner;
use venice_interconnect::FabricKind;
use venice_ssd::{DispatchPolicyKind, RunMetrics, ScoutCacheKind, SsdConfig, SsdSim};
use venice_workloads::WorkloadAxis;

/// One benched (mesh shape × queue depth × policy × request budget)
/// coordinate; the fabric is always Venice — the only design with scout
/// walks to skip.
struct Scenario {
    name: &'static str,
    rows: u16,
    cols: u16,
    queue_depth: usize,
    policy: DispatchPolicyKind,
    requests: usize,
}

/// Congested big meshes under the two relevant dispatch regimes. Under
/// `RetryAll` every queued chip re-attempts every round, so the engine is
/// maximally scout-walk-bound — the cache's headline case; the deep-queue
/// variants saturate the dispatch rounds with conflicted chips, raising
/// the number of attempts between fabric state changes (which is what the
/// cache's hit rate is made of). Under the `Auto`-selected backoff most
/// doomed attempts are already suppressed, so the remaining walks are the
/// hard residue; the cache must still not cost anything there, since it
/// rides the per-fabric default path.
const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "congested_16x16_venice",
        rows: 16,
        cols: 16,
        queue_depth: 8,
        policy: DispatchPolicyKind::RetryAll,
        requests: 400,
    },
    Scenario {
        name: "congested_16x16_venice_qd32",
        rows: 16,
        cols: 16,
        queue_depth: 32,
        policy: DispatchPolicyKind::RetryAll,
        requests: 400,
    },
    Scenario {
        name: "congested_32x32_venice",
        rows: 32,
        cols: 32,
        queue_depth: 8,
        policy: DispatchPolicyKind::RetryAll,
        requests: 250,
    },
    Scenario {
        name: "congested_32x32_venice_qd64",
        rows: 32,
        cols: 32,
        queue_depth: 64,
        policy: DispatchPolicyKind::RetryAll,
        requests: 250,
    },
    Scenario {
        name: "congested_32x32_venice_auto",
        rows: 32,
        cols: 32,
        queue_depth: 8,
        policy: DispatchPolicyKind::Auto,
        requests: 250,
    },
];

/// Fraction of the baseline speedup a scenario may lose before the smoke
/// fails (>30% events/sec regression).
const REGRESSION_FLOOR: f64 = 0.7;

fn run(cfg: &SsdConfig, trace: &venice_workloads::Trace) -> RunMetrics {
    let sized = cfg.clone().sized_for_footprint(trace.footprint_bytes());
    SsdSim::new(sized, FabricKind::Venice, trace).run()
}

/// Asserts the cache-on run is bit-identical to the cache-off run in every
/// simulated-behavior field. The only legal deltas are the cache's own
/// effort counters (`scout_fastfails`, `scout_cache_invalidations`) and
/// the reported cache label itself.
fn assert_behaviorally_identical(off: &RunMetrics, on: &RunMetrics, name: &str) {
    let mut masked = on.clone();
    masked.scout_cache = off.scout_cache;
    masked.fabric.scout_fastfails = off.fabric.scout_fastfails;
    masked.fabric.scout_cache_invalidations = off.fabric.scout_cache_invalidations;
    assert_eq!(
        &masked, off,
        "{name}: cache-on run diverged from cache-off beyond effort counters"
    );
}

fn main() {
    let mut r = Runner::new("scout_walk").sample_budget(Duration::from_millis(250));
    let mut summary = String::from("{\n  \"bench\": \"scout_walk\",\n  \"scenarios\": [\n");
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (i, s) in SCENARIOS.iter().enumerate() {
        let trace = WorkloadAxis::congested().trace(s.requests);
        let base = SsdConfig::performance_optimized()
            .with_mesh(s.rows, s.cols)
            .with_queue_depth(s.queue_depth)
            .with_dispatch_policy(s.policy);
        let off_cfg = base.clone().with_scout_cache(ScoutCacheKind::Off);
        let on_cfg = base.clone().with_scout_cache(ScoutCacheKind::On);
        // Correctness first: the cached engine must be bit-identical in
        // every simulated-behavior field.
        let m_off = run(&off_cfg, &trace);
        let m_on = run(&on_cfg, &trace);
        assert_behaviorally_identical(&m_off, &m_on, s.name);
        let events = m_off.events;
        let fastfails = m_on.fabric.scout_fastfails;
        let invalidations = m_on.fabric.scout_cache_invalidations;
        let failed_steps = m_off.fabric.scout_failed_steps;

        let mut timed: Vec<f64> = Vec::new();
        for (tag, cfg) in [("cache_off", &off_cfg), ("cache_on", &on_cfg)] {
            r.bench(&format!("{}_{}", s.name, tag), || {
                black_box(run(cfg, black_box(&trace)));
            });
            timed.push(r.last_ns_per_iter().expect("bench just ran"));
        }
        let (ns_off, ns_on) = (timed[0], timed[1]);
        let evps_off = events as f64 / (ns_off / 1e9);
        let evps_on = events as f64 / (ns_on / 1e9);
        let speedup = evps_on / evps_off;
        println!(
            "scout_walk {:<30} {:>7.2}M ev/s cache-on vs {:>7.2}M cache-off  ({:.2}x, \
             {} fast-fails / {} invalidations)",
            s.name,
            evps_on / 1e6,
            evps_off / 1e6,
            speedup,
            fastfails,
            invalidations
        );
        summary.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}x{}\", \"fabric\": \"Venice\", \
             \"queue_depth\": {}, \"policy\": \"{}\", \"requests\": {}, \"events\": {}, \
             \"scout_failed_steps\": {}, \"scout_fastfails\": {}, \
             \"scout_cache_invalidations\": {}, \
             \"events_per_sec_cache_on\": {:.0}, \
             \"events_per_sec_cache_off\": {:.0}, \"speedup\": {:.3}}}{}\n",
            s.name,
            s.rows,
            s.cols,
            s.queue_depth,
            s.policy.label(),
            s.requests,
            events,
            failed_steps,
            fastfails,
            invalidations,
            evps_on,
            evps_off,
            speedup,
            if i + 1 == SCENARIOS.len() { "" } else { "," }
        ));
        speedups.push((s.name.to_string(), speedup));
    }
    summary.push_str("  ]\n}\n");
    r.finish();

    let dir = venice_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let out = dir.join("bench_scout.json");
    match std::fs::write(&out, &summary) {
        Ok(()) => println!("scout summary -> {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }

    // Perf-smoke gate against the checked-in baseline ratios.
    venice_bench::microbench::enforce_speedup_baseline(
        "scout_walk",
        &dir.join("bench_scout_baseline.json"),
        &speedups,
        REGRESSION_FLOOR,
    );
}
