//! Micro-benchmarks of the event calendar: the bucketed time-wheel
//! [`EventQueue`] against the original binary-heap calendar
//! ([`ReferenceHeapQueue`]), under the classic hold model (steady pending
//! population, pop one / schedule one) and under burst workloads (many
//! events at one timestamp — the simulator's same-instant dispatch storms).

use std::hint::black_box;
use venice_bench::microbench::Runner;
use venice_sim::rng::Xorshift64Star;
use venice_sim::{EventQueue, ReferenceHeapQueue, SimDuration, SimTime};

/// Mixed event-horizon delta stream mimicking the SSD simulation: mostly
/// short wire/firmware latencies, some array-operation latencies, a tail of
/// erase-scale far-future events.
fn next_delta(rng: &mut Xorshift64Star) -> SimDuration {
    SimDuration::from_nanos(match rng.next_bounded(10) {
        0 => 0,                              // same-instant dispatch
        1..=6 => rng.next_bounded(4_000),    // bursts + firmware
        7 | 8 => 3_000 + rng.next_bounded(100_000), // tR / tPROG
        _ => 1_000_000 + rng.next_bounded(2_000_000), // tBERS
    })
}

fn main() {
    let mut r = Runner::new("event_queue");

    for &population in &[64usize, 1024] {
        // Hold model: steady-state pending population; each iteration pops
        // the earliest event and schedules a replacement.
        r.bench(&format!("hold_model_wheel_{population}"), {
            let mut q = EventQueue::new();
            let mut rng = Xorshift64Star::new(42);
            for i in 0..population {
                q.schedule(SimTime::ZERO + next_delta(&mut rng), i as u64);
            }
            move || {
                let (t, e) = q.pop().expect("population stays constant");
                q.schedule(t + next_delta(&mut rng), black_box(e));
            }
        });
        r.bench(&format!("hold_model_heap_{population}"), {
            let mut q = ReferenceHeapQueue::new();
            let mut rng = Xorshift64Star::new(42);
            for i in 0..population {
                q.schedule(SimTime::ZERO + next_delta(&mut rng), i as u64);
            }
            move || {
                let (t, e) = q.pop().expect("population stays constant");
                q.schedule(t + next_delta(&mut rng), black_box(e));
            }
        });
    }

    // Burst: schedule many events at one instant, then drain them all —
    // the shape of coalesced dispatch rounds. The wheel drains bursts with
    // pop_batch; the heap pays a log-n pop per event.
    const BURST: u64 = 256;
    r.bench("burst_same_timestamp_wheel", {
        let mut q = EventQueue::new();
        let mut out = Vec::with_capacity(BURST as usize);
        move || {
            let t = q.now() + SimDuration::from_nanos(10);
            for i in 0..BURST {
                q.schedule(t, i);
            }
            out.clear();
            let at = q.pop_batch(&mut out).expect("burst pending");
            black_box((at, out.len()));
        }
    });
    r.bench("burst_same_timestamp_heap", {
        let mut q = ReferenceHeapQueue::new();
        move || {
            let t = q.now() + SimDuration::from_nanos(10);
            for i in 0..BURST {
                q.schedule(t, i);
            }
            for _ in 0..BURST {
                black_box(q.pop());
            }
        }
    });

    r.finish();
}
