//! Cross-crate integration tests: full simulations exercising HIL + FTL +
//! fabric + NAND together, checking paper-level behavioral claims.

use venice::interconnect::FabricKind;
use venice::ssd::{all_systems, run_systems, ExperimentBuilder, SsdConfig, SystemKind};
use venice::workloads::{catalog, mix, WorkloadSpec};

fn quick(name: &str, requests: usize) -> venice::workloads::Trace {
    catalog::by_name(name).expect("catalog workload").generate(requests)
}

#[test]
fn catalog_workload_completes_on_all_systems() {
    let trace = quick("hm_0", 400);
    let cfg = SsdConfig::performance_optimized();
    let results = run_systems(&cfg, &all_systems(), &trace);
    for m in &results {
        assert_eq!(m.completed_requests, 400, "{}", m.system);
        assert_eq!(m.hil.completed, 400, "{}", m.system);
        assert!(m.energy_mj > 0.0);
    }
}

#[test]
fn venice_at_least_ties_baseline_and_always_conflicts_less() {
    // Fully transfer-saturated episodes can slightly favor the baseline's
    // 1.2 GB/s buses over Venice's 1 GB/s links — a structural ceiling
    // documented in EXPERIMENTS.md — so Venice may tie within a few percent
    // on execution time, but it must always resolve more requests
    // conflict-free.
    let cfg = SsdConfig::performance_optimized();
    for name in ["proj_3", "src2_1"] {
        let trace = quick(name, 800);
        let results = run_systems(&cfg, &[SystemKind::Baseline, SystemKind::Venice], &trace);
        let speedup = results[1].speedup_over(&results[0]);
        assert!(speedup >= 0.96, "{name}: venice speedup {speedup}");
        assert!(
            results[1].conflict_pct() < results[0].conflict_pct(),
            "{name}: conflicts must improve"
        );
    }
}

#[test]
fn ideal_upper_bounds_every_system() {
    let trace = quick("ssd-10", 600);
    let cfg = SsdConfig::performance_optimized();
    let results = run_systems(&cfg, &all_systems(), &trace);
    let ideal = results
        .iter()
        .find(|m| m.system == FabricKind::Ideal)
        .unwrap()
        .execution_time;
    for m in &results {
        assert!(
            m.execution_time >= ideal,
            "{} finished before the ideal SSD",
            m.system
        );
    }
}

#[test]
fn conflict_ordering_matches_figure13() {
    // Baseline suffers the most conflicts; the ideal SSD has none.
    let trace = quick("src2_1", 600);
    let cfg = SsdConfig::performance_optimized();
    let results = run_systems(
        &cfg,
        &[SystemKind::Baseline, SystemKind::Venice, SystemKind::Ideal],
        &trace,
    );
    let base = results[0].conflict_pct();
    let venice = results[1].conflict_pct();
    let ideal = results[2].conflict_pct();
    assert_eq!(ideal, 0.0);
    assert!(venice < base, "venice {venice}% vs baseline {base}%");
}

#[test]
fn cost_optimized_gains_are_smaller_than_performance_optimized() {
    // §6.1's second key observation: faster flash makes the interconnect
    // matter more.
    let trace = quick("ssd-10", 800);
    let perf = run_systems(
        &SsdConfig::performance_optimized(),
        &[SystemKind::Baseline, SystemKind::Ideal],
        &trace,
    );
    let cost = run_systems(
        &SsdConfig::cost_optimized(),
        &[SystemKind::Baseline, SystemKind::Ideal],
        &trace,
    );
    let perf_gain = perf[1].speedup_over(&perf[0]);
    let cost_gain = cost[1].speedup_over(&cost[0]);
    assert!(
        perf_gain >= cost_gain * 0.95,
        "perf-opt ideal gain {perf_gain} vs cost-opt {cost_gain}"
    );
}

#[test]
fn mixes_run_end_to_end() {
    let m = mix::by_name("mix5").expect("table 3 mix");
    let trace = mix::generate(m, 250);
    let metrics = ExperimentBuilder::performance_optimized()
        .system(SystemKind::Venice)
        .run(&trace);
    assert_eq!(metrics.completed_requests, trace.len() as u64);
}

#[test]
fn write_heavy_workload_garbage_collects_on_every_fabric() {
    let trace = WorkloadSpec::new("churn-it", 10.0, 16.0, 6.0)
        .footprint_mb(64)
        .generate(2_500);
    for kind in [SystemKind::Baseline, SystemKind::Venice] {
        let mut cfg = SsdConfig::performance_optimized();
        cfg.array.chip.blocks_per_plane = 8;
        cfg.array.chip.pages_per_block = 32;
        let m = venice::ssd::SsdSim::new(cfg, kind, &trace).run();
        assert!(m.ftl.gc_erases > 0, "{kind}: GC never ran");
        assert!(m.ftl.write_amplification() >= 1.0);
        assert_eq!(m.completed_requests, 2_500);
    }
}

#[test]
fn figure15_shapes_all_simulate() {
    let trace = quick("usr_0", 300);
    for (r, c) in [(4u16, 16u16), (8, 8), (16, 4)] {
        let m = ExperimentBuilder::performance_optimized()
            .shape(r, c)
            .system(SystemKind::Venice)
            .run(&trace);
        assert_eq!(m.completed_requests, 300, "{r}x{c}");
    }
}

#[test]
fn runs_are_deterministic_across_threads() {
    let trace = quick("web_1", 300);
    let cfg = SsdConfig::performance_optimized();
    let a = run_systems(&cfg, &[SystemKind::Venice], &trace);
    let b = run_systems(&cfg, &[SystemKind::Venice], &trace);
    assert_eq!(a[0].execution_time, b[0].execution_time);
    assert_eq!(a[0].conflicted_requests, b[0].conflicted_requests);
    assert_eq!(a[0].energy_mj, b[0].energy_mj);
}

#[test]
fn sweep_grid_is_bit_identical_across_pool_sizes() {
    // The sweep engine's determinism contract: the same grid run on a
    // one-thread pool and a four-thread pool must produce bit-identical
    // per-point RunMetrics (and therefore identical JSON records and
    // manifest fingerprints) — pool size may only change wall-clock time.
    use venice_bench::sweep::{SweepGrid, WorkerPool};
    use venice_workloads::WorkloadAxis;

    let grid = SweepGrid::new("determinism")
        .config(SsdConfig::performance_optimized())
        .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
        .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
        .workload(WorkloadAxis::mix("mix1").expect("table 3"))
        .fabrics(&[SystemKind::Baseline, SystemKind::Venice, SystemKind::Ideal])
        .queue_depths(&[4, 8])
        .requests(120);
    let serial = grid.run_on(&WorkerPool::new(1));
    let pooled = grid.run_on(&WorkerPool::new(4));
    assert_eq!(serial.records().len(), 18); // 3 workloads × 2 depths × 3 fabrics
    for (a, b) in serial.records().iter().zip(pooled.records()) {
        assert_eq!(a.point.id, b.point.id);
        assert_eq!(a.point.label, b.point.label);
        assert_eq!(a.metrics, b.metrics, "{}: metrics differ across pool sizes", a.point.label);
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "{}: JSON records differ across pool sizes",
            a.point.label
        );
    }
    assert_eq!(serial.grid_hash(), pooled.grid_hash());
    assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
    assert_eq!(serial.manifest_fingerprint(), pooled.manifest_fingerprint());
}

/// The dispatch-policy refactor's ground truth: with the default
/// `RetryAll` policy, the engine must be *bit-identical* to the
/// pre-refactor dispatcher. The constant below was captured by running the
/// pre-refactor engine (commit cf0d979) over the whole Table 2 catalog ×
/// all six fabrics at 120 requests and chaining the behavioral fields of
/// every run into one FNV-1a hash; the same computation must reproduce it
/// today. Any change to dispatch order, event scheduling, conflict
/// accounting, or the time-wheel contract shows up here.
#[test]
fn retry_all_is_bit_identical_to_the_pre_refactor_engine() {
    use venice::workloads::WorkloadAxis;

    const PRE_REFACTOR_TABLE2_HASH: u64 = 0xf87d_2d1e_f6d0_fead;

    fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
        bytes.iter().fold(seed, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }

    let cfg = SsdConfig::performance_optimized();
    assert_eq!(
        cfg.dispatch,
        venice::ssd::DispatchPolicyKind::RetryAll,
        "the default policy must be the pre-refactor behavior"
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for axis in WorkloadAxis::table2() {
        let trace = axis.trace(120);
        for fabric in FabricKind::ALL {
            let m = venice::ssd::run_single(&cfg, fabric, &trace);
            let line = format!(
                "{}|{}|{}|{}|{}|{}|{}|{}|{:016x}\n",
                axis.name(),
                fabric.label(),
                m.execution_time.as_nanos(),
                m.events,
                m.transactions,
                m.conflicted_requests,
                m.fabric.conflicts,
                m.fabric.acquisitions,
                m.energy_mj.to_bits(),
            );
            h = fnv1a(line.as_bytes(), h);
        }
    }
    assert_eq!(
        h, PRE_REFACTOR_TABLE2_HASH,
        "RetryAll diverged from the pre-refactor engine on the table2 grid"
    );
}

/// Every dispatch policy completes every request and stays fingerprint-
/// stable across worker-pool sizes (the determinism contract extends to
/// the new sweep axis).
#[test]
fn policies_are_deterministic_across_pool_sizes() {
    use venice::ssd::DispatchPolicyKind;
    use venice_bench::sweep::{SweepGrid, WorkerPool};
    use venice_workloads::WorkloadAxis;

    let grid = SweepGrid::new("policy-determinism")
        .config(SsdConfig::performance_optimized())
        .workload(WorkloadAxis::congested())
        .workload(WorkloadAxis::catalog("src2_1").expect("catalog"))
        .policies(&DispatchPolicyKind::ALL)
        .fabrics(&[SystemKind::Baseline, SystemKind::Venice])
        .requests(150);
    let serial = grid.run_on(&WorkerPool::new(1));
    let pooled = grid.run_on(&WorkerPool::new(4));
    assert_eq!(serial.records().len(), 16); // 2 workloads × 4 policies × 2 fabrics
    for (a, b) in serial.records().iter().zip(pooled.records()) {
        assert_eq!(a.point.policy, b.point.policy);
        assert_eq!(a.metrics.policy, a.point.policy, "metrics must carry the policy");
        assert_eq!(a.metrics.completed_requests, 150, "{}", a.point.label);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: metrics differ across pool sizes",
            a.point.label
        );
        assert!(
            a.metrics.dispatch.rounds > 0 && a.metrics.dispatch.attempts > 0,
            "{}: dispatcher stats must be populated",
            a.point.label
        );
    }
    assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
    // The policies really behave differently (same workload+fabric, all
    // three policies in one grid must not collapse to one fingerprint).
    let venice_congested: Vec<_> = serial
        .records()
        .iter()
        .filter(|r| r.point.fabric == SystemKind::Venice && r.point.workload == "congested")
        .collect();
    assert_eq!(venice_congested.len(), 4);
    let backoff = venice_congested
        .iter()
        .find(|r| r.point.policy == DispatchPolicyKind::ConflictBackoff)
        .expect("backoff point");
    assert!(
        backoff.metrics.dispatch.skipped_backoff > 0,
        "congested Venice must actually exercise backoff"
    );
    // Auto resolves to ConflictBackoff on Venice: behaviorally identical to
    // the explicit backoff point, differing only in the reported policy.
    let auto = venice_congested
        .iter()
        .find(|r| r.point.policy == DispatchPolicyKind::Auto)
        .expect("auto point");
    assert_eq!(auto.metrics.policy, DispatchPolicyKind::Auto);
    assert_eq!(auto.metrics.execution_time, backoff.metrics.execution_time);
    assert_eq!(auto.metrics.dispatch, backoff.metrics.dispatch);
    // And on the bus fabric Auto is RetryAll.
    let base_auto = serial
        .records()
        .iter()
        .find(|r| {
            r.point.fabric == SystemKind::Baseline
                && r.point.workload == "congested"
                && r.point.policy == DispatchPolicyKind::Auto
        })
        .expect("baseline auto point");
    let base_retry = serial
        .records()
        .iter()
        .find(|r| {
            r.point.fabric == SystemKind::Baseline
                && r.point.workload == "congested"
                && r.point.policy == DispatchPolicyKind::RetryAll
        })
        .expect("baseline retry-all point");
    assert_eq!(
        base_auto.metrics.execution_time,
        base_retry.metrics.execution_time
    );
    assert_eq!(base_auto.metrics.dispatch, base_retry.metrics.dispatch);
}

/// Resumable sweeps: a second run of the same grid reuses every on-disk
/// point record (simulating nothing) yet converges to the same manifest
/// fingerprint, a changed grid is not resumed, and `fresh` forces
/// re-execution.
#[test]
fn resumable_sweeps_skip_existing_points() {
    use venice_bench::sweep::{SweepGrid, WorkerPool};
    use venice_workloads::WorkloadAxis;

    let base = std::env::temp_dir().join("venice-resume-test");
    let _ = std::fs::remove_dir_all(&base);
    let grid = SweepGrid::new("resume")
        .config(SsdConfig::performance_optimized())
        .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
        .fabrics(&[SystemKind::Baseline, SystemKind::Venice])
        .requests(80);
    let pool = WorkerPool::new(2);

    let first = grid.run_resumable(&base, &pool, false);
    assert_eq!(first.reused_count(), 0, "nothing on disk yet");
    assert_eq!(first.executed().len(), 2);

    // Point records persist as they complete (no write() call yet), so a
    // killed sweep resumes from the points it finished.
    let second = grid.run_resumable(&base, &pool, false);
    assert_eq!(second.reused_count(), 2, "all records reused");
    assert!(second.executed().is_empty());
    assert_eq!(second.metrics_fingerprint(), first.metrics_fingerprint());
    // Manifests agree up to run-local wall-clock time (whose f64 Display
    // length varies run to run — comparing raw lengths here was flaky).
    let strip_wall = |m: String| -> String {
        m.lines()
            .filter(|l| !l.trim_start().starts_with("\"wall_seconds\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_wall(second.manifest_json()),
        strip_wall(first.manifest_json())
    );
    first.write().expect("write artifact");
    assert!(first.dir().join("manifest.json").is_file());
    assert!(first.dir().join("grid.json").is_file());

    // Deleting one record resumes exactly the missing point.
    let victim = &first.points()[1];
    std::fs::remove_file(first.dir().join(victim.file_name())).expect("remove one record");
    let third = grid.run_resumable(&base, &pool, false);
    assert_eq!(third.reused_count(), 1);
    assert_eq!(third.executed().len(), 1);
    assert_eq!(third.executed()[0].0, victim.id);
    assert_eq!(third.metrics_fingerprint(), first.metrics_fingerprint());

    // A different grid definition must not reuse the artifact.
    let other = SweepGrid::new("resume")
        .config(SsdConfig::performance_optimized())
        .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
        .fabrics(&[SystemKind::Baseline, SystemKind::Venice])
        .requests(90);
    let fourth = other.run_resumable(&base, &pool, false);
    assert_eq!(fourth.reused_count(), 0, "grid definition changed");
    let stamp = std::fs::read_to_string(fourth.dir().join("grid.json"))
        .expect("stamp written before simulation");
    assert!(stamp.contains("\"requests\": 90"), "stamp follows the new grid");

    // A torn (truncated) record is never trusted, even under a matching
    // stamp: the structural filter forces that point to re-run.
    let torn = fourth.dir().join(fourth.points()[0].file_name());
    std::fs::write(&torn, "{\"system\": \"Base").expect("plant torn record");
    let healed = other.run_resumable(&base, &pool, false);
    assert_eq!(healed.reused_count(), 1, "whole record reused");
    assert_eq!(healed.executed().len(), 1, "torn record re-executed");
    assert_eq!(healed.executed()[0].0, fourth.points()[0].id);
    assert_eq!(healed.metrics_fingerprint(), fourth.metrics_fingerprint());

    // And --fresh bypasses matching records.
    let fifth = grid.run_resumable(&base, &pool, true);
    assert_eq!(fifth.reused_count(), 0);
    assert_eq!(fifth.executed().len(), 2);
    assert_eq!(fifth.metrics_fingerprint(), first.metrics_fingerprint());
    let _ = std::fs::remove_dir_all(&base);
}

/// A panicking sweep point must not take the sweep down: the worker
/// catches the unwind, records a structured `"status": "failed"`
/// placeholder for that point, and every other point completes normally.
/// A later resumable run of the same grid re-executes the failed point
/// instead of trusting its placeholder record.
#[test]
fn a_panicking_point_is_isolated_and_reported_failed() {
    use venice::ssd::RunStatus;
    use venice_bench::sweep::{SweepGrid, WorkerPool};
    use venice_workloads::WorkloadAxis;

    // The `panic_after_events` fail point panics the engine mid-run — a
    // deterministic stand-in for any engine bug — on the poisoned config
    // axis value only; the healthy preset rides in the same grid.
    let mut poisoned = SsdConfig::performance_optimized().with_panic_after_events(1_000);
    poisoned.name = "poisoned";
    let grid = SweepGrid::new("panic-isolation")
        .config(SsdConfig::performance_optimized())
        .config(poisoned)
        .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
        .fabrics(&[SystemKind::Baseline, SystemKind::Venice])
        .requests(100);
    let pool = WorkerPool::new(2);

    let outcome = grid.run_on(&pool);
    assert_eq!(outcome.records().len(), 4);
    for r in outcome.records() {
        if r.point.config_name == "poisoned" {
            assert_eq!(r.metrics.status, RunStatus::Failed, "{}", r.point.label);
            assert_eq!(r.metrics.completed_requests, 0, "{}", r.point.label);
            assert!(
                r.metrics.to_json().contains("\"status\": \"failed\""),
                "{}: record must carry the failure",
                r.point.label
            );
        } else {
            assert_eq!(r.metrics.status, RunStatus::Complete, "{}", r.point.label);
            assert_eq!(r.metrics.completed_requests, 100, "{}", r.point.label);
        }
    }
    // The manifest index exposes per-point status for sweep_diff.
    assert!(outcome.manifest_json().contains("\"status\": \"failed\""));

    // Resume never trusts a failed placeholder: only the two healthy
    // points are reused, the two poisoned ones re-execute.
    let base = std::env::temp_dir().join("venice-panic-isolation-test");
    let _ = std::fs::remove_dir_all(&base);
    let first = grid.run_resumable(&base, &pool, false);
    assert_eq!(first.reused_count(), 0);
    let second = grid.run_resumable(&base, &pool, false);
    assert_eq!(second.reused_count(), 2, "healthy records reused");
    assert_eq!(second.executed().len(), 2, "failed records re-executed");
    assert_eq!(second.metrics_fingerprint(), first.metrics_fingerprint());
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn catalog_sweep_is_deterministic_across_parallelism() {
    // The parallel sweep runner must produce bit-identical RunMetrics
    // whether workloads run on one worker thread or four.
    let cfg = SsdConfig::performance_optimized();
    let systems = [SystemKind::Baseline, SystemKind::Venice];
    let (serial, s1) = venice_bench::sweep_catalog(&cfg, &systems, 120, 1);
    let (parallel, s4) = venice_bench::sweep_catalog(&cfg, &systems, 120, 4);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(s1.events, s4.events);
    for ((name_a, row_a), (name_b, row_b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(name_a, name_b, "catalog order must not depend on VENICE_PAR");
        assert_eq!(row_a, row_b, "{name_a}: metrics differ between PAR=1 and PAR=4");
    }
}
