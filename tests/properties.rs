//! Property-based tests (proptest) on the core data structures and
//! invariants that the simulator's correctness rests on.

use proptest::prelude::*;

use venice::ftl::{ArrayGeometry, Ftl, FtlConfig};
use venice::interconnect::mesh::MeshState;
use venice::interconnect::{Mesh2D, NodeId};
use venice::nand::ChipGeometry;
use venice::sim::rng::Lfsr2;
use venice::workloads::WorkloadSpec;

proptest! {
    /// A scout walk either reserves a valid simple path or leaves the mesh
    /// exactly as it was — never a partial reservation.
    #[test]
    fn scout_walk_is_atomic(
        rows in 2u16..=8,
        cols in 2u16..=8,
        dst_seed in any::<u16>(),
        pre in proptest::collection::vec((0u16..64, 0u16..64), 0..6),
    ) {
        let topo = Mesh2D::new(rows, cols);
        let mut mesh = MeshState::new(topo, usize::from(rows));
        let mut lfsr = Lfsr2::new();
        // Pre-reserve a few circuits on distinct packet ids (1..rows),
        // keeping packet 0 free for the walk under test.
        for (i, (a, b)) in pre.iter().enumerate().take(usize::from(rows) - 1) {
            let src = NodeId(a % topo.node_count() as u16);
            let dst = NodeId(b % topo.node_count() as u16);
            let _ = mesh.scout_walk((i + 1) as u8, src, dst, &mut lfsr);
        }
        let busy_before = mesh.reserved_link_count();
        let src = topo.fc_node(venice::interconnect::FcId(0));
        let dst = NodeId(dst_seed % topo.node_count() as u16);
        match mesh.scout_walk(0, src, dst, &mut lfsr) {
            Ok((path, _)) => {
                // Valid simple path, every link owned by packet 0.
                prop_assert_eq!(*path.nodes.first().unwrap(), src);
                prop_assert_eq!(*path.nodes.last().unwrap(), dst);
                let uniq: std::collections::HashSet<_> = path.nodes.iter().collect();
                prop_assert_eq!(uniq.len(), path.nodes.len());
                for &l in &path.links {
                    prop_assert_eq!(mesh.link_owner(l), Some(0));
                }
                mesh.release(&path);
            }
            Err(_) => {}
        }
        prop_assert_eq!(mesh.reserved_link_count(), busy_before);
    }

    /// FTL mapping and valid-count invariants survive arbitrary write/GC
    /// interleavings.
    #[test]
    fn ftl_invariants_under_random_traffic(
        ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..400),
    ) {
        let array = ArrayGeometry::new(4, ChipGeometry::z_nand_small());
        let mut ftl = Ftl::new(FtlConfig {
            array,
            logical_pages: 256,
            gc_threshold_blocks: 2,
            wear_delta_threshold: 1_000,
        });
        for (lpa, do_gc) in ops {
            if ftl.allocate_write(lpa).is_err() {
                // Out of unreserved space: drive GC to completion.
                for plane in ftl.planes_needing_gc() {
                    if let Some(job) = ftl.start_gc(plane) {
                        for &(l, old) in &job.pages {
                            ftl.relocate(l, old, false).unwrap();
                        }
                        ftl.finish_erase(&job, false);
                    }
                }
                continue;
            }
            if do_gc {
                if let Some(plane) = ftl.planes_needing_gc().first().copied() {
                    if let Some(job) = ftl.start_gc(plane) {
                        for &(l, old) in &job.pages {
                            ftl.relocate(l, old, false).unwrap();
                        }
                        ftl.finish_erase(&job, false);
                    }
                }
            }
        }
        ftl.check_invariants();
    }

    /// Generated traces always honor their own declared constraints.
    #[test]
    fn traces_are_well_formed(
        read_pct in 0.0f64..=100.0,
        kb in 4.0f64..128.0,
        us in 1.0f64..500.0,
        n in 1usize..300,
        burst in 1.0f64..64.0,
    ) {
        let t = WorkloadSpec::new("prop", read_pct, kb, us)
            .footprint_mb(128)
            .burst_mean(burst)
            .generate(n);
        prop_assert_eq!(t.len(), n);
        let mut last = None;
        for e in t.events() {
            prop_assert!(e.bytes > 0);
            prop_assert!(e.offset + u64::from(e.bytes) <= t.footprint_bytes());
            if let Some(prev) = last {
                prop_assert!(e.arrival >= prev);
            }
            last = Some(e.arrival);
        }
    }

    /// Page-address packing over arbitrary geometry is a bijection.
    #[test]
    fn gppa_roundtrip(
        chips in 1u16..16,
        dies in 1u32..3,
        planes in 1u32..3,
        blocks in 1u32..16,
        pages in 1u32..32,
        probe in any::<u64>(),
    ) {
        let chip = ChipGeometry {
            dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_size: 4096,
        };
        let array = ArrayGeometry::new(chips, chip);
        let idx = probe % array.total_pages();
        let addr = array.unpack(venice::ftl::Gppa(idx));
        prop_assert_eq!(array.pack(addr), venice::ftl::Gppa(idx));
    }
}
