//! Randomized property tests on the core data structures and invariants the
//! simulator's correctness rests on.
//!
//! The build environment has no crates-registry access, so instead of
//! proptest these properties drive the workspace's own deterministic
//! [`Xorshift64Star`] generator over a few hundred seeded cases each —
//! reproducible across runs and platforms by construction.

use venice::ftl::{ArrayGeometry, Ftl, FtlConfig};
use venice::interconnect::mesh::MeshState;
use venice::interconnect::{FcId, Mesh2D, NodeId};
use venice::nand::ChipGeometry;
use venice::sim::rng::{Lfsr2, Xorshift64Star};
use venice::sim::{EventQueue, ReferenceHeapQueue, SimDuration, SimTime};
use venice::workloads::WorkloadSpec;

/// A scout walk either reserves a valid simple path or leaves the mesh
/// exactly as it was — never a partial reservation.
#[test]
fn scout_walk_is_atomic() {
    let mut rng = Xorshift64Star::new(0xA70);
    for case in 0..300 {
        let rows = 2 + (rng.next_bounded(7) as u16);
        let cols = 2 + (rng.next_bounded(7) as u16);
        let topo = Mesh2D::new(rows, cols);
        let mut mesh = MeshState::new(topo, usize::from(rows));
        let mut lfsr = Lfsr2::new();
        // Pre-reserve a few circuits on distinct packet ids (1..rows),
        // keeping packet 0 free for the walk under test.
        let pre = rng.next_bounded(6) as usize;
        for i in 0..pre.min(usize::from(rows) - 1) {
            let src = NodeId(rng.next_bounded(topo.node_count() as u64) as u16);
            let dst = NodeId(rng.next_bounded(topo.node_count() as u64) as u16);
            let _ = mesh.scout_walk((i + 1) as u8, src, dst, &mut lfsr);
        }
        let busy_before = mesh.reserved_link_count();
        let src = topo.fc_node(FcId(0));
        let dst = NodeId(rng.next_bounded(topo.node_count() as u64) as u16);
        if let Ok((path, _)) = mesh.scout_walk(0, src, dst, &mut lfsr) {
            {
                // Valid simple path, every link owned by packet 0.
                assert_eq!(*path.nodes.first().unwrap(), src, "case {case}");
                assert_eq!(*path.nodes.last().unwrap(), dst, "case {case}");
                let uniq: std::collections::HashSet<_> = path.nodes.iter().collect();
                assert_eq!(uniq.len(), path.nodes.len(), "case {case}: self-crossing");
                for &l in &path.links {
                    assert_eq!(mesh.link_owner(l), Some(0), "case {case}");
                }
                mesh.release_owned(path);
            }
        }
        assert_eq!(mesh.reserved_link_count(), busy_before, "case {case}");
    }
}

/// The bucketed time-wheel calendar delivers the exact pop sequence of the
/// reference binary heap — ordering, FIFO tie-breaks among equal
/// timestamps, and `now()` monotonicity — under randomized schedules that
/// cross bucket boundaries and the overflow horizon, at every bucket width
/// the auto-tuner can pick (256 ns default, 512 ns z-nand, 4096 ns tlc-3d).
#[test]
fn event_calendar_matches_reference_heap() {
    for seed in 1..=20u64 {
        // Cycle the widths across seeds so each width sees several schedules.
        let bucket_ns = [256u64, 512, 4096][(seed % 3) as usize];
        let mut rng = Xorshift64Star::new(seed);
        let mut wheel = EventQueue::with_bucket_ns(bucket_ns);
        let mut heap = ReferenceHeapQueue::new();
        let mut id = 0u64;
        let mut last_time = SimTime::ZERO;
        for _ in 0..2_000 {
            if rng.next_bool(0.55) || wheel.is_empty() {
                // Mixed horizons: same-instant ties, sub-bucket, a few
                // buckets ahead, and far beyond the wheel window.
                let delta = match rng.next_bounded(4) {
                    0 => 0,
                    1 => rng.next_bounded(200),
                    2 => rng.next_bounded(20_000),
                    _ => rng.next_bounded(2_000_000),
                };
                let t = wheel.now() + SimDuration::from_nanos(delta);
                wheel.schedule(t, id);
                heap.schedule(t, id);
                id += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed}: pop diverged");
                let (t, _) = a.expect("non-empty");
                assert!(t >= last_time, "seed {seed}: now() went backwards");
                last_time = t;
                assert_eq!(wheel.now(), heap.now(), "seed {seed}");
            }
            assert_eq!(wheel.len(), heap.len(), "seed {seed}");
        }
        // Drain: the tails must agree too.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b, "seed {seed}: drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

/// FTL mapping and valid-count invariants survive arbitrary write/GC
/// interleavings.
#[test]
fn ftl_invariants_under_random_traffic() {
    let mut rng = Xorshift64Star::new(0xF71);
    for _case in 0..60 {
        let array = ArrayGeometry::new(4, ChipGeometry::z_nand_small());
        let mut ftl = Ftl::new(FtlConfig {
            array,
            logical_pages: 256,
            gc_threshold_blocks: 2,
            wear_delta_threshold: 1_000,
        });
        let ops = 1 + rng.next_bounded(400);
        for _ in 0..ops {
            let lpa = rng.next_bounded(256);
            let do_gc = rng.next_bool(0.5);
            if ftl.allocate_write(lpa).is_err() {
                // Out of unreserved space: drive GC to completion.
                for plane in ftl.planes_needing_gc() {
                    if let Some(job) = ftl.start_gc(plane) {
                        for &(l, old) in &job.pages {
                            ftl.relocate(l, old, false).unwrap();
                        }
                        ftl.finish_erase(&job, false);
                    }
                }
                continue;
            }
            if do_gc {
                if let Some(plane) = ftl.planes_needing_gc().first().copied() {
                    if let Some(job) = ftl.start_gc(plane) {
                        for &(l, old) in &job.pages {
                            ftl.relocate(l, old, false).unwrap();
                        }
                        ftl.finish_erase(&job, false);
                    }
                }
            }
        }
        ftl.check_invariants();
    }
}

/// Generated traces always honor their own declared constraints.
#[test]
fn traces_are_well_formed() {
    let mut rng = Xorshift64Star::new(0x77F);
    for case in 0..120 {
        let read_pct = rng.next_f64() * 100.0;
        let kb = 4.0 + rng.next_f64() * 124.0;
        let us = 1.0 + rng.next_f64() * 499.0;
        let n = 1 + rng.next_bounded(300) as usize;
        let burst = 1.0 + rng.next_f64() * 63.0;
        let t = WorkloadSpec::new("prop", read_pct, kb, us)
            .footprint_mb(128)
            .burst_mean(burst)
            .generate(n);
        assert_eq!(t.len(), n, "case {case}");
        let mut last = None;
        for e in t.events() {
            assert!(e.bytes > 0, "case {case}");
            assert!(
                e.offset + u64::from(e.bytes) <= t.footprint_bytes(),
                "case {case}: event beyond footprint"
            );
            if let Some(prev) = last {
                assert!(e.arrival >= prev, "case {case}: arrivals not sorted");
            }
            last = Some(e.arrival);
        }
    }
}

/// The incremental ready-set dispatcher must be *bit-identical* to the
/// retained full-scan reference dispatcher — same `RunMetrics`, same JSON
/// bytes — for every fabric and policy, under randomized workloads. This
/// is the correctness contract that lets the ready-set engine ship as the
/// default: `DispatchScanKind` is a performance knob, never a behavioral
/// axis.
#[test]
fn incremental_dispatch_matches_the_full_scan_reference() {
    use venice::ssd::{run_single, DispatchPolicyKind, DispatchScanKind, SsdConfig};
    use venice::interconnect::FabricKind;

    let mut rng = Xorshift64Star::new(0xD15);
    for case in 0..4u64 {
        // Rotate through the policy table so every policy sees random
        // traffic on every fabric across the case set.
        let policy = DispatchPolicyKind::ALL[(case % 4) as usize];
        let read_pct = 40.0 + rng.next_f64() * 60.0;
        let kb = 4.0 + rng.next_f64() * 28.0;
        let us = 1.0 + rng.next_f64() * 15.0;
        let n = 80 + rng.next_bounded(120) as usize;
        let trace = WorkloadSpec::new("xcheck", read_pct, kb, us)
            .footprint_mb(48)
            .burst_mean(1.0 + rng.next_f64() * 24.0)
            .generate(n);
        let base = SsdConfig::performance_optimized().with_dispatch_policy(policy);
        for fabric in FabricKind::ALL {
            let incr = run_single(
                &base.clone().with_dispatch_scan(DispatchScanKind::Incremental),
                fabric,
                &trace,
            );
            let full = run_single(
                &base.clone().with_dispatch_scan(DispatchScanKind::FullScan),
                fabric,
                &trace,
            );
            assert_eq!(
                incr, full,
                "case {case}: {fabric}/{policy}: engines diverged"
            );
            assert_eq!(
                incr.to_json(),
                full.to_json(),
                "case {case}: {fabric}/{policy}: JSON records diverged"
            );
        }
    }

    // Big meshes are where the ready set pays — and where an ordering bug
    // would hide: cross-check 16×16 under congestion-heavy traffic too.
    let trace = venice::workloads::WorkloadAxis::congested().trace(150);
    for fabric in [FabricKind::NoSsd, FabricKind::Venice] {
        for policy in [DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto] {
            let base = SsdConfig::performance_optimized()
                .with_mesh(16, 16)
                .with_dispatch_policy(policy);
            let incr = run_single(
                &base.clone().with_dispatch_scan(DispatchScanKind::Incremental),
                fabric,
                &trace,
            );
            let full = run_single(
                &base.clone().with_dispatch_scan(DispatchScanKind::FullScan),
                fabric,
                &trace,
            );
            assert_eq!(incr, full, "16x16 {fabric}/{policy}: engines diverged");
        }
    }
}

/// The scout fast-fail cache must be *behaviorally invisible*: a cached
/// Venice run is bit-identical to the uncached engine in every
/// simulated-behavior field (execution time, latencies, conflicts,
/// acquisitions, energy, events — everything except the cache's own
/// `scout_fastfails` / `scout_cache_invalidations` effort counters), and
/// `ScoutCacheKind::Checked` re-runs the full walk beside every cache
/// verdict, panicking on any false fast-fail or replay mismatch (verdict,
/// steps, misroutes, or LFSR draws). This is the randomized cross-check
/// pattern that pinned the PR 4 dispatcher, applied to the cache.
#[test]
fn scout_fastfail_cache_is_bit_identical_and_checked() {
    use venice::interconnect::FabricKind;
    use venice::ssd::{run_single, DispatchPolicyKind, ScoutCacheKind, SsdConfig};

    // A cached run equals the uncached run up to the cache's effort
    // counters and its own reported label.
    fn assert_behaviorally_identical(
        off: &venice::ssd::RunMetrics,
        cached: &venice::ssd::RunMetrics,
        ctx: &str,
    ) {
        let mut masked = cached.clone();
        masked.scout_cache = off.scout_cache;
        masked.fabric.scout_fastfails = off.fabric.scout_fastfails;
        masked.fabric.scout_cache_invalidations = off.fabric.scout_cache_invalidations;
        assert_eq!(&masked, off, "{ctx}: cache changed simulated behavior");
    }

    let mut rng = Xorshift64Star::new(0xCAC4E);
    for case in 0..4u64 {
        let policy = venice::ssd::DispatchPolicyKind::ALL[(case % 4) as usize];
        let read_pct = 40.0 + rng.next_f64() * 60.0;
        let kb = 4.0 + rng.next_f64() * 28.0;
        let us = 1.0 + rng.next_f64() * 10.0;
        let n = 80 + rng.next_bounded(120) as usize;
        let trace = WorkloadSpec::new("cache-xcheck", read_pct, kb, us)
            .footprint_mb(48)
            .burst_mean(1.0 + rng.next_f64() * 24.0)
            .generate(n);
        // The cache is a Venice knob, but run every fabric once in Checked
        // mode on the first case: non-Venice fabrics must carry the knob
        // inertly (same metrics, zero cache counters).
        let fabrics: &[FabricKind] = if case == 0 {
            &FabricKind::ALL
        } else {
            &[FabricKind::Venice]
        };
        for &fabric in fabrics {
            let base = SsdConfig::performance_optimized().with_dispatch_policy(policy);
            let off = run_single(
                &base.clone().with_scout_cache(ScoutCacheKind::Off),
                fabric,
                &trace,
            );
            let on = run_single(
                &base.clone().with_scout_cache(ScoutCacheKind::On),
                fabric,
                &trace,
            );
            // Checked runs the full walk beside every cache verdict and
            // asserts agreement internally — completing is the check.
            let checked = run_single(
                &base.clone().with_scout_cache(ScoutCacheKind::Checked),
                fabric,
                &trace,
            );
            let ctx = format!("case {case}: {fabric}/{policy}");
            assert_behaviorally_identical(&off, &on, &ctx);
            assert_behaviorally_identical(&off, &checked, &ctx);
            if fabric != FabricKind::Venice {
                assert_eq!(on.fabric.scout_fastfails, 0, "{ctx}: knob must be inert");
            }
        }
    }

    // Big congested meshes are where the cache pays — and where a stale
    // fast-fail or a draw-count mismatch would hide: cross-check 16×16
    // under congestion-heavy traffic, in all three modes, for the two
    // policies the per-fabric default table can select.
    let trace = venice::workloads::WorkloadAxis::congested().trace(150);
    for policy in [DispatchPolicyKind::RetryAll, DispatchPolicyKind::Auto] {
        let base = SsdConfig::performance_optimized()
            .with_mesh(16, 16)
            .with_dispatch_policy(policy);
        let off = run_single(
            &base.clone().with_scout_cache(ScoutCacheKind::Off),
            FabricKind::Venice,
            &trace,
        );
        let on = run_single(
            &base.clone().with_scout_cache(ScoutCacheKind::On),
            FabricKind::Venice,
            &trace,
        );
        let checked = run_single(
            &base.clone().with_scout_cache(ScoutCacheKind::Checked),
            FabricKind::Venice,
            &trace,
        );
        let ctx = format!("congested 16x16 Venice/{policy}");
        assert_behaviorally_identical(&off, &on, &ctx);
        assert_behaviorally_identical(&off, &checked, &ctx);
        assert!(
            on.fabric.scout_fastfails > 0,
            "{ctx}: congestion must exercise the fast-fail path"
        );
        assert!(
            checked.fabric.scout_fastfails > 0,
            "{ctx}: checked mode must verify live verdicts"
        );
    }
}

/// Fault injection is sound on every fabric: under every scripted fault
/// plan — link and router outages, repairs, permanent chip death, transient
/// NAND errors, and the randomized storm — and randomized traffic, (a) the
/// calendar always drains (no fault scenario hangs or panics), (b) every
/// request reaches a terminal state and only chip-killing plans produce
/// structured failures, (c) `ScoutCacheKind::Checked` stays green on Venice
/// (down-masked links and generation-stamped invalidations never leave a
/// stale fast-fail behind), and (d) faulted sweeps stay bit-identical
/// across worker-pool sizes, extending the determinism contract to the
/// fault axis.
#[test]
fn fault_injection_is_sound_on_every_fabric() {
    use venice::interconnect::FabricKind;
    use venice::ssd::{run_single, FaultPlan, RunStatus, ScoutCacheKind, SsdConfig};

    let mut rng = Xorshift64Star::new(0xFA17);
    for case in 0..2u64 {
        let read_pct = 20.0 + rng.next_f64() * 70.0;
        let kb = 4.0 + rng.next_f64() * 28.0;
        let us = 1.0 + rng.next_f64() * 10.0;
        let n = 120 + rng.next_bounded(120) as usize;
        let trace = WorkloadSpec::new("fault-prop", read_pct, kb, us)
            .footprint_mb(48)
            .burst_mean(1.0 + rng.next_f64() * 16.0)
            .generate(n);
        for &plan in &FaultPlan::ALL {
            for fabric in FabricKind::ALL {
                let cfg = SsdConfig::performance_optimized().with_fault_plan(plan);
                let m = run_single(&cfg, fabric, &trace);
                let ctx = format!("case {case}: {fabric}/{}", plan.label());
                assert_eq!(m.status, RunStatus::Complete, "{ctx}: run must drain");
                assert_eq!(
                    m.completed_requests, n as u64,
                    "{ctx}: every request must reach a terminal state"
                );
                assert!(m.failed_requests <= m.completed_requests, "{ctx}");
                if plan == FaultPlan::None {
                    assert_eq!(m.faults_injected, 0, "{ctx}: None must be inert");
                    assert_eq!(m.failed_requests, 0, "{ctx}");
                    assert_eq!(m.availability(), 1.0, "{ctx}");
                }
                // Requests to surviving chips complete successfully: plans
                // that never kill a chip (transient NAND errors retry to
                // success) must not fail anything.
                if plan == FaultPlan::TransientNand {
                    assert_eq!(m.failed_requests, 0, "{ctx}: retries must succeed");
                }
                // Determinism extends to faulted runs.
                let again = run_single(&cfg, fabric, &trace);
                assert_eq!(m, again, "{ctx}: faulted run not deterministic");
            }
            // (c) Checked mode re-walks beside every cache verdict and
            // panics on any stale fast-fail — completing is the check.
            let checked = run_single(
                &SsdConfig::performance_optimized()
                    .with_fault_plan(plan)
                    .with_scout_cache(ScoutCacheKind::Checked),
                FabricKind::Venice,
                &trace,
            );
            assert_eq!(
                checked.status,
                RunStatus::Complete,
                "case {case}: Venice/{}/cache-checked must drain",
                plan.label()
            );
        }
    }

    // (d) Fingerprints are pool-size-stable with faults on.
    {
        use venice_bench::sweep::{SweepGrid, WorkerPool};
        use venice::workloads::WorkloadAxis;

        let grid = SweepGrid::new("fault-determinism")
            .config(venice::ssd::SsdConfig::performance_optimized())
            .workload(WorkloadAxis::congested())
            .fault_plans(&[FaultPlan::Link, FaultPlan::LinkRepair, FaultPlan::Storm])
            .fabrics(&[
                venice::ssd::SystemKind::Baseline,
                venice::ssd::SystemKind::NoSsd,
                venice::ssd::SystemKind::Venice,
            ])
            .requests(150);
        let serial = grid.run_on(&WorkerPool::new(1));
        let pooled = grid.run_on(&WorkerPool::new(4));
        assert_eq!(serial.records().len(), 9); // 3 plans × 3 fabrics
        for (a, b) in serial.records().iter().zip(pooled.records()) {
            assert_eq!(a.point.label, b.point.label);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: faulted metrics differ across pool sizes",
                a.point.label
            );
        }
        assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
        assert_eq!(serial.manifest_fingerprint(), pooled.manifest_fingerprint());
    }
}

/// Multi-tenant QoS invariants under randomized tenancy: (a) the WRR
/// arbiter never fetches a tenant past its queue-depth cap under arbitrary
/// submit/fetch/complete interleavings, and per-tenant HIL stats partition
/// the global counters; (b) end-to-end, per-tenant run metrics partition
/// the global run (completions, failures) with Jain's fairness index in
/// `(0, 1]`, deterministically; (c) tenant-axis sweeps — per-tenant
/// metrics included — are bit-identical across worker-pool sizes.
#[test]
fn tenant_qos_invariants_under_random_tenancy() {
    use venice::hil::{DeadlineClass, HilConfig, HostInterface, HostRequest, TenantSet, TenantSpec};
    use venice::ssd::{run_single, SsdConfig};
    use venice::workloads::{IoOp, Trace};

    const NAMES: [&str; 4] = ["ten-a", "ten-b", "ten-c", "ten-d"];
    let mut rng = Xorshift64Star::new(0x7E4A47);

    // (a) HIL-level: randomized tenancy and interleavings never break the
    // cap or conservation invariants.
    for case in 0..60 {
        let t = 1 + rng.next_bounded(4) as usize;
        let specs: Vec<TenantSpec> = (0..t)
            .map(|i| TenantSpec {
                name: NAMES[i],
                weight: 1 + rng.next_bounded(8) as u32,
                qd_cap: if rng.next_bool(0.5) {
                    0 // unlimited
                } else {
                    1 + rng.next_bounded(6) as u32
                },
                deadline: DeadlineClass::Default,
            })
            .collect();
        let set = TenantSet::custom(format!("prop-{case}"), specs.clone());
        let config = HilConfig {
            queues: 8,
            queue_depth: 2 + rng.next_bounded(7) as usize,
            ..HilConfig::default()
        };
        let mut hil = HostInterface::with_tenants(config, set);
        let mut next_id = 0u64;
        let mut inflight: Vec<u64> = Vec::new();
        for _ in 0..400 {
            match rng.next_bounded(3) {
                0 => {
                    let req = HostRequest {
                        id: next_id,
                        tenant: rng.next_bounded(t as u64) as u8,
                        arrival: SimTime::ZERO,
                        op: if rng.next_bool(0.5) { IoOp::Read } else { IoOp::Write },
                        offset: rng.next_bounded(1 << 30),
                        bytes: 4096,
                        deadline: None,
                    };
                    next_id += 1;
                    let _ = hil.submit(req);
                }
                1 => {
                    if let Some(req) = hil.fetch() {
                        inflight.push(req.id);
                    }
                    for (i, spec) in specs.iter().enumerate() {
                        if spec.qd_cap != 0 {
                            assert!(
                                hil.tenant_inflight(i) <= u64::from(spec.qd_cap),
                                "case {case}: tenant {i} fetched beyond its cap"
                            );
                        }
                    }
                }
                _ => {
                    if !inflight.is_empty() {
                        let k = rng.next_bounded(inflight.len() as u64) as usize;
                        hil.complete(inflight.swap_remove(k), SimTime::ZERO);
                    }
                }
            }
        }
        // Per-tenant stats partition the global counters, and the global
        // in-flight count is the sum of the per-tenant ones.
        let global = hil.stats();
        let per: (u64, u64, u64, u64) = hil.tenant_stats().iter().fold(
            (0, 0, 0, 0),
            |(s, b, f, c), ts| {
                (s + ts.submitted, b + ts.backpressured, f + ts.fetched, c + ts.completed)
            },
        );
        assert_eq!(per.0, global.submitted, "case {case}");
        assert_eq!(per.1, global.backpressured, "case {case}");
        assert_eq!(per.2, global.fetched, "case {case}");
        assert_eq!(per.3, global.completed, "case {case}");
        let tenant_inflight_sum: u64 = (0..t).map(|i| hil.tenant_inflight(i)).sum();
        assert_eq!(tenant_inflight_sum, hil.inflight(), "case {case}");
        assert_eq!(global.fetched - global.completed, hil.inflight(), "case {case}");
    }

    // (b) End-to-end: per-tenant run metrics partition the global run.
    for case in 0..3u64 {
        let t = 1 + rng.next_bounded(3) as usize;
        let specs: Vec<TenantSpec> = (0..t)
            .map(|i| TenantSpec {
                name: NAMES[i],
                weight: 1 + rng.next_bounded(4) as u32,
                qd_cap: if rng.next_bool(0.7) { 0 } else { 2 + rng.next_bounded(4) as u32 },
                deadline: DeadlineClass::Default,
            })
            .collect();
        let set = TenantSet::custom(format!("e2e-{case}"), specs);
        let untagged = WorkloadSpec::new("tenant-prop", 70.0, 4.0, 8.0)
            .footprint_mb(64)
            .burst_mean(1.0 + rng.next_f64() * 12.0)
            .generate(150);
        let tags: Vec<u8> = (0..untagged.len())
            .map(|_| rng.next_bounded(t as u64) as u8)
            .collect();
        let trace = Trace::with_tenants(
            "tenant-prop",
            untagged.footprint_bytes(),
            untagged.events().to_vec(),
            tags,
        );
        let config = SsdConfig::performance_optimized().with_tenants(set.clone());
        for fabric in [
            venice::interconnect::FabricKind::Baseline,
            venice::interconnect::FabricKind::Venice,
        ] {
            let m = run_single(&config, fabric, &trace);
            let ctx = format!("case {case}: {fabric}");
            assert_eq!(m.tenants.len(), set.len(), "{ctx}");
            assert_eq!(
                m.tenants.iter().map(|x| x.completed).sum::<u64>(),
                m.completed_requests,
                "{ctx}: per-tenant completions must partition the global count"
            );
            assert_eq!(
                m.tenants.iter().map(|x| x.failed).sum::<u64>(),
                m.failed_requests,
                "{ctx}"
            );
            let j = m.fairness_index();
            assert!(j > 0.0 && j <= 1.0 + 1e-12, "{ctx}: Jain index {j} out of range");
            let again = run_single(&config, fabric, &trace);
            assert_eq!(m, again, "{ctx}: tenant-tagged run not deterministic");
        }
    }

    // (c) Tenant-axis sweeps — per-tenant metrics included via the full
    // RunMetrics comparison — are pool-size-stable.
    {
        use venice::workloads::WorkloadAxis;
        use venice_bench::sweep::{SweepGrid, WorkerPool};

        let grid = SweepGrid::new("tenant-determinism")
            .config(SsdConfig::performance_optimized())
            .workload(WorkloadAxis::noisy_neighbor())
            .tenant_sets(&TenantSet::presets())
            .fabrics(&[
                venice::ssd::SystemKind::Baseline,
                venice::ssd::SystemKind::Venice,
            ])
            .requests(120);
        let serial = grid.run_on(&WorkerPool::new(1));
        let pooled = grid.run_on(&WorkerPool::new(4));
        assert_eq!(serial.records().len(), 8); // 4 tenant sets × 2 fabrics
        for (a, b) in serial.records().iter().zip(pooled.records()) {
            assert_eq!(a.point.label, b.point.label);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: per-tenant metrics differ across pool sizes",
                a.point.label
            );
        }
        assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
        assert_eq!(serial.manifest_fingerprint(), pooled.manifest_fingerprint());
    }
}

/// The host resilience layer is sound on every fabric: under every
/// resilience preset, every fault plan that matters to it, and randomized
/// traffic, (a) the calendar always drains and every request reaches
/// exactly one terminal outcome — `completed + shed` partitions the trace
/// and `deadline_met + failed` partitions the completions; (b) disarmed
/// mechanisms stay inert (no misses without a deadline, no retries without
/// retry, no sheds without admission control) and armed retries respect
/// the per-request cap; (c) `ResiliencePolicy::None` is bit-identical to
/// the pre-resilience engine; (d) resilience-axis sweeps are bit-identical
/// across worker-pool sizes, extending the determinism contract to the
/// resilience axis.
#[test]
fn host_resilience_is_sound_on_every_fabric() {
    use venice::interconnect::FabricKind;
    use venice::ssd::{run_single, FaultPlan, ResiliencePolicy, RunStatus, SsdConfig};

    let mut rng = Xorshift64Star::new(0x4E51);
    for case in 0..2u64 {
        let read_pct = 20.0 + rng.next_f64() * 70.0;
        let kb = 4.0 + rng.next_f64() * 28.0;
        let us = 1.0 + rng.next_f64() * 10.0;
        let n = 120 + rng.next_bounded(120);
        let trace = WorkloadSpec::new("resilience-prop", read_pct, kb, us)
            .footprint_mb(48)
            .burst_mean(1.0 + rng.next_f64() * 16.0)
            .generate(n as usize);
        // The storm exercises timeouts and retries against transient
        // outages; the permanent link fault exercises terminal failures.
        for plan in [FaultPlan::None, FaultPlan::Link, FaultPlan::Storm] {
            for &policy in &ResiliencePolicy::ALL {
                let cfg = SsdConfig::performance_optimized()
                    .with_fault_plan(plan)
                    .with_resilience(policy);
                for fabric in FabricKind::ALL {
                    let m = run_single(&cfg, fabric, &trace);
                    let ctx =
                        format!("case {case}: {fabric}/{}/{}", plan.label(), policy.label());
                    assert_eq!(m.status, RunStatus::Complete, "{ctx}: run must drain");
                    // (a) Exactly one terminal outcome per request.
                    assert_eq!(
                        m.completed_requests + m.shed_requests,
                        n,
                        "{ctx}: completed + shed must partition the trace"
                    );
                    assert_eq!(
                        m.deadline_met_requests + m.failed_requests,
                        m.completed_requests,
                        "{ctx}: met + failed must partition the completions"
                    );
                    assert!(m.deadline_misses <= m.failed_requests, "{ctx}");
                    // (b) Disarmed mechanisms stay inert; armed retries
                    // respect the per-request cap.
                    let params = policy.params();
                    if params.deadline.is_none() {
                        assert_eq!(m.deadline_misses, 0, "{ctx}: no deadline, no misses");
                    }
                    match params.retry {
                        None => assert_eq!(m.host_retries, 0, "{ctx}: retry disarmed"),
                        Some(r) => assert!(
                            m.host_retries <= u64::from(r.max_retries) * n,
                            "{ctx}: {} retries exceed the cap",
                            m.host_retries
                        ),
                    }
                    if params.admission.is_none() {
                        assert_eq!(m.shed_requests, 0, "{ctx}: admission disarmed");
                    }
                    // Per-tenant breakdowns partition the global counters.
                    assert_eq!(
                        m.tenants.iter().map(|t| t.shed).sum::<u64>(),
                        m.shed_requests,
                        "{ctx}"
                    );
                    assert_eq!(
                        m.tenants.iter().map(|t| t.host_retries).sum::<u64>(),
                        m.host_retries,
                        "{ctx}"
                    );
                    assert_eq!(
                        m.tenants.iter().map(|t| t.deadline_misses).sum::<u64>(),
                        m.deadline_misses,
                        "{ctx}"
                    );
                    // Determinism extends to resilient runs.
                    let again = run_single(&cfg, fabric, &trace);
                    assert_eq!(m, again, "{ctx}: resilient run not deterministic");
                }
            }
            // (c) The None preset is the pre-resilience engine, bit for bit.
            let bare = SsdConfig::performance_optimized().with_fault_plan(plan);
            let off = run_single(&bare, FabricKind::Venice, &trace);
            let none = run_single(
                &bare.clone().with_resilience(ResiliencePolicy::None),
                FabricKind::Venice,
                &trace,
            );
            assert_eq!(off, none, "case {case}: {}: None preset not inert", plan.label());
        }
    }

    // (d) Resilience-axis sweeps are pool-size-stable.
    {
        use venice::workloads::WorkloadAxis;
        use venice_bench::sweep::{SweepGrid, WorkerPool};

        let grid = SweepGrid::new("resilience-determinism")
            .config(SsdConfig::performance_optimized())
            .workload(WorkloadAxis::congested())
            .fault_plans(&[FaultPlan::None, FaultPlan::Storm])
            .resilience_policies(&ResiliencePolicy::ALL)
            .fabrics(&[venice::ssd::SystemKind::Baseline, venice::ssd::SystemKind::Venice])
            .requests(150);
        let serial = grid.run_on(&WorkerPool::new(1));
        let pooled = grid.run_on(&WorkerPool::new(4));
        assert_eq!(serial.records().len(), 24); // 2 plans × 6 policies × 2 fabrics
        for (a, b) in serial.records().iter().zip(pooled.records()) {
            assert_eq!(a.point.label, b.point.label);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: resilient metrics differ across pool sizes",
                a.point.label
            );
        }
        assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
        assert_eq!(serial.manifest_fingerprint(), pooled.manifest_fingerprint());
    }
}

/// Die-level parity redundancy is sound on every fabric: under the
/// permanent chip-death plan and randomized traffic, (a) the calendar
/// always drains with the rebuild engine armed and every request reaches
/// a terminal state; (b) parity turns the chip death into zero data-loss
/// requests on every fabric, while the bare run's losses stay a strict
/// subset of its failures; (c) the background rebuild runs to completion
/// — pages recovered, a finite MTTR endpoint after the 20 µs death —
/// deterministically; (d) `RedundancyKind::None` is bit-identical to the
/// pre-redundancy engine; (e) redundancy-axis sweeps are bit-identical
/// across worker-pool sizes, extending the determinism contract to the
/// redundancy axis.
#[test]
fn rebuild_is_sound_on_every_fabric() {
    use venice::interconnect::FabricKind;
    use venice::ssd::{run_single, FaultPlan, RedundancyKind, RunStatus, SsdConfig};

    let mut rng = Xorshift64Star::new(0x4EB1);
    for case in 0..2u64 {
        let read_pct = 60.0 + rng.next_f64() * 40.0;
        let kb = 4.0 + rng.next_f64() * 12.0;
        let us = 1.0 + rng.next_f64() * 6.0;
        let n = 150 + rng.next_bounded(150);
        let trace = WorkloadSpec::new("rebuild-prop", read_pct, kb, us)
            .footprint_mb(32)
            .burst_mean(1.0 + rng.next_f64() * 8.0)
            .generate(n as usize);
        // A 4×4 mesh keeps a meaningful share of the pages on the victim
        // die, so the rebuild and the degraded-read window both matter.
        let bare = SsdConfig::performance_optimized()
            .with_mesh(4, 4)
            .with_fault_plan(FaultPlan::Chip);
        let parity = bare
            .clone()
            .with_redundancy(RedundancyKind::Parity { group: 4 });
        for fabric in FabricKind::ALL {
            let ctx = format!("case {case}: {fabric}");
            let m = run_single(&parity, fabric, &trace);
            assert_eq!(m.status, RunStatus::Complete, "{ctx}: run must drain");
            assert_eq!(
                m.completed_requests, n,
                "{ctx}: every request must reach a terminal state"
            );
            // (b) Parity averts the data loss the bare run suffers.
            assert_eq!(m.data_loss_requests, 0, "{ctx}: parity must avert data loss");
            assert!(
                m.tenants.iter().all(|t| t.data_loss == 0),
                "{ctx}: per-tenant data loss must be zero too"
            );
            // (c) The rebuild ran to completion after the 20 µs death.
            assert!(m.rebuilt_pages > 0, "{ctx}: rebuild must recover pages");
            assert!(m.rebuild_done_ns > 20_000, "{ctx}: MTTR endpoint recorded");
            let again = run_single(&parity, fabric, &trace);
            assert_eq!(m, again, "{ctx}: rebuilt run not deterministic");
            let lost = run_single(&bare, fabric, &trace);
            assert_eq!(lost.status, RunStatus::Complete, "{ctx}: bare run must drain");
            assert!(
                lost.data_loss_requests <= lost.failed_requests,
                "{ctx}: data loss must stay a subset of failures"
            );
            assert_eq!(lost.rebuilt_pages, 0, "{ctx}: no redundancy, no rebuild");
            assert_eq!(lost.rebuild_done_ns, 0, "{ctx}");
            // (d) The None scheme is the pre-redundancy engine, bit for bit.
            let none = run_single(
                &bare.clone().with_redundancy(RedundancyKind::None),
                fabric,
                &trace,
            );
            assert_eq!(lost, none, "{ctx}: None scheme not inert");
        }
    }

    // (e) Redundancy-axis sweeps are pool-size-stable.
    {
        use venice::workloads::WorkloadAxis;
        use venice_bench::sweep::{SweepGrid, WorkerPool};

        let grid = SweepGrid::new("rebuild-determinism")
            .config(SsdConfig::performance_optimized().with_mesh(4, 4))
            .workload(WorkloadAxis::congested())
            .fault_plans(&[FaultPlan::Chip])
            .redundancy_kinds(&RedundancyKind::ALL)
            .fabrics(&[venice::ssd::SystemKind::Baseline, venice::ssd::SystemKind::Venice])
            .requests(150);
        let serial = grid.run_on(&WorkerPool::new(1));
        let pooled = grid.run_on(&WorkerPool::new(4));
        assert_eq!(serial.records().len(), 4); // 2 schemes × 2 fabrics
        for (a, b) in serial.records().iter().zip(pooled.records()) {
            assert_eq!(a.point.label, b.point.label);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: rebuilt metrics differ across pool sizes",
                a.point.label
            );
        }
        assert_eq!(serial.metrics_fingerprint(), pooled.metrics_fingerprint());
        assert_eq!(serial.manifest_fingerprint(), pooled.manifest_fingerprint());
    }
}

/// Page-address packing over arbitrary geometry is a bijection.
#[test]
fn gppa_roundtrip() {
    let mut rng = Xorshift64Star::new(0x6EA);
    for case in 0..300 {
        let chip = ChipGeometry {
            dies: 1 + rng.next_bounded(2) as u32,
            planes_per_die: 1 + rng.next_bounded(2) as u32,
            blocks_per_plane: 1 + rng.next_bounded(15) as u32,
            pages_per_block: 1 + rng.next_bounded(31) as u32,
            page_size: 4096,
        };
        let chips = 1 + rng.next_bounded(15) as u16;
        let array = ArrayGeometry::new(chips, chip);
        let idx = rng.next_u64() % array.total_pages();
        let addr = array.unpack(venice::ftl::Gppa(idx));
        assert_eq!(array.pack(addr), venice::ftl::Gppa(idx), "case {case}");
    }
}
