//! # Venice: conflict-free SSD accesses — reproduction facade
//!
//! This crate re-exports the whole Venice reproduction workspace under one
//! roof so examples and downstream users can write `venice::ssd::...`.
//!
//! The workspace reproduces *Nadig & Sadrosadati et al., "Venice: Improving
//! Solid-State Drive Parallelism at Low Cost via Conflict-Free Accesses",
//! ISCA 2023*: a cycle-approximate multi-queue SSD simulator with five
//! intra-SSD communication fabrics (Baseline shared bus, pSSD, pnSSD, NoSSD,
//! Venice) plus an ideal path-conflict-free fabric.
//!
//! See [`ssd::ExperimentBuilder`] for the one-call entry point used by
//! the figure harnesses, and `venice_bench::sweep` (a
//! dev-dependency of this facade, used by the examples) for design-space
//! sweep grids over a shared worker pool. `docs/ARCHITECTURE.md` maps the
//! crates and a request's life through them.
//!
//! # Example
//!
//! ```
//! use venice::ssd::{ExperimentBuilder, SystemKind};
//! use venice::workloads::catalog;
//!
//! let trace = catalog::by_name("hm_0").unwrap().generate(2_000);
//! let metrics = ExperimentBuilder::performance_optimized()
//!     .system(SystemKind::Venice)
//!     .run(&trace);
//! assert!(metrics.completed_requests > 0);
//! ```

#![warn(missing_docs)]

pub use venice_ftl as ftl;
pub use venice_hil as hil;
pub use venice_interconnect as interconnect;
pub use venice_nand as nand;
pub use venice_sim as sim;
pub use venice_ssd as ssd;
pub use venice_workloads as workloads;
